// Job specification and task execution for the plain MapReduce runner.
#ifndef I2MR_MR_JOB_H_
#define I2MR_MR_JOB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "mr/api.h"
#include "mr/cost_model.h"
#include "mr/shuffle.h"

namespace i2mr {

/// Identifies one task attempt (used by the failure-injection hook).
struct TaskId {
  enum class Kind { kMap, kReduce };
  Kind kind = Kind::kMap;
  int index = 0;
  int attempt = 0;
};

/// Full description of one MapReduce job.
struct JobSpec {
  std::string name = "job";

  /// Input part files (plain KV record files); one map task per part.
  std::vector<std::string> input_parts;

  MapperFactory mapper;
  ReducerFactory reducer;
  /// Optional map-side combiner (may be null).
  ReducerFactory combiner;
  /// Optional custom partitioner (default: hash).
  std::shared_ptr<Partitioner> partitioner;

  int num_reduce_tasks = 4;

  /// Directory for the final output parts ("part-<r>.dat"). Must exist.
  std::string output_dir;

  /// Test-only failure injection: return true to make the given task
  /// attempt fail (it will be retried up to `max_attempts`).
  std::function<bool(const TaskId&)> fail_hook;
  int max_attempts = 4;

  /// Input parts under this path prefix are "remote" (Dfs-resident): map
  /// tasks charge the cost model's network transfer for reading them.
  /// Set automatically by LocalCluster::RunJob to the cluster's Dfs root.
  /// Local caches (HaLoop structure caching, iterMR local structure files)
  /// fall outside the prefix and read for free.
  std::string remote_prefix;

  /// How map output reaches reducers (see shuffle.h). kInMemory skips the
  /// spill-file round-trip for this same-process runtime; the simulated
  /// network charges are identical either way. Overridden to kDisk by
  /// I2MR_FORCE_DISK_SHUFFLE=1.
  ShuffleMode shuffle_mode = ShuffleMode::kInMemory;

  /// In-memory exchange budget; runs above it spill to disk per-run.
  size_t shuffle_memory_bytes = kDefaultShuffleMemoryBytes;
};

/// Outcome of a job run.
struct JobResult {
  Status status;
  std::shared_ptr<StageMetrics> metrics;  // shared: StageMetrics is not copyable
  std::vector<std::string> output_parts;
  double wall_ms = 0.0;

  bool ok() const { return status.ok(); }
};

namespace internal {

/// Run one map task attempt: read `input_part`, run the mapper, partition,
/// sort (+combine) and publish to `exchange` (spilling over/under
/// `<job_dir>/map-<m>/` as needed; exchange may be null for disk mode).
Status RunMapTask(const JobSpec& spec, int m, const std::string& input_part,
                  const std::string& job_dir, ShuffleExchange* exchange,
                  const CostModel& cost, StageMetrics* metrics, int attempt);

/// Run one reduce task attempt: fetch partition r from the exchange and
/// every map spill, merge, reduce, and write `<output_dir>/part-<r>.dat`
/// (write-temp-then-rename so retries are idempotent).
Status RunReduceTask(const JobSpec& spec, int r, int num_map_tasks,
                     const std::string& job_dir,
                     const ShuffleExchange* exchange, const CostModel& cost,
                     StageMetrics* metrics, int attempt);

/// Retry wrapper honoring spec.fail_hook / spec.max_attempts.
Status RunTaskWithRetries(const JobSpec& spec, TaskId::Kind kind, int index,
                          const std::function<Status(int attempt)>& attempt_fn);

}  // namespace internal
}  // namespace i2mr

#endif  // I2MR_MR_JOB_H_
