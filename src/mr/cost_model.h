// CostModel: injects the cluster costs that matter in the paper's
// experiments — per-job startup latency (Hadoop takes ~20 s to start a job,
// §4.2) and network transfer time for shuffled bytes — scaled down so the
// laptop-scale benches finish quickly but keep the paper's shape.
#ifndef I2MR_MR_COST_MODEL_H_
#define I2MR_MR_COST_MODEL_H_

#include <cstdint>

namespace i2mr {

struct CostModel {
  /// Charged once at job submission (models JobTracker startup; 0 = off).
  double job_startup_ms = 0.0;

  /// Charged once per task launch (scheduling overhead; 0 = off).
  double task_startup_ms = 0.0;

  /// Simulated network bandwidth for shuffle transfers, in MB/s (0 = off,
  /// i.e. transfers only pay local disk I/O).
  double net_mb_per_s = 0.0;

  /// Fixed latency per shuffle transfer in ms (0 = off).
  double net_latency_ms = 0.0;

  /// Sleep for the simulated transfer time of `bytes` over the network.
  void ChargeTransfer(uint64_t bytes) const;

  /// Sleep for the job startup cost.
  void ChargeJobStartup() const;

  /// Sleep for the task startup cost.
  void ChargeTaskStartup() const;
};

}  // namespace i2mr

#endif  // I2MR_MR_COST_MODEL_H_
