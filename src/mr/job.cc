#include "mr/job.h"

#include <cstdio>

#include "common/logging.h"
#include "common/timer.h"
#include "io/env.h"
#include "io/record_file.h"
#include "mr/shuffle.h"

namespace i2mr {
namespace internal {
namespace {

std::string MapTaskDir(const std::string& job_dir, int m) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "map-%05d", m);
  return JoinPath(job_dir, buf);
}

std::string PartFileName(int r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05d.dat", r);
  return buf;
}

// Emits reduce output records into a RecordWriter.
class FileReduceContext : public ReduceContext {
 public:
  explicit FileReduceContext(RecordWriter* writer) : writer_(writer) {}

  void Emit(std::string_view key, std::string_view value) override {
    Status st = writer_->Add(key, value);
    if (!st.ok() && status_.ok()) status_ = st;
    ++count_;
  }

  const Status& status() const { return status_; }
  int64_t count() const { return count_; }

 private:
  RecordWriter* writer_;
  Status status_;
  int64_t count_ = 0;
};

}  // namespace

Status RunMapTask(const JobSpec& spec, int m, const std::string& input_part,
                  const std::string& job_dir, ShuffleExchange* exchange,
                  const CostModel& cost, StageMetrics* metrics, int attempt) {
  cost.ChargeTaskStartup();
  bool inject_failure =
      spec.fail_hook &&
      spec.fail_hook(TaskId{TaskId::Kind::kMap, m, attempt});

  if (!spec.remote_prefix.empty() &&
      input_part.compare(0, spec.remote_prefix.size(), spec.remote_prefix) ==
          0) {
    auto sz = FileSize(input_part);
    if (sz.ok()) cost.ChargeTransfer(*sz);
  }

  auto mapper = spec.mapper();
  Partitioner default_partitioner;
  const Partitioner* part =
      spec.partitioner ? spec.partitioner.get() : &default_partitioner;
  ShuffleWriter writer(spec.num_reduce_tasks, part, MapTaskDir(job_dir, m),
                       exchange);

  int64_t in_records = 0;
  {
    ScopedTimer t(&metrics->map_ns);
    mapper->Setup(&writer);
    auto reader = RecordReader::Open(input_part);
    if (!reader.ok()) return reader.status();
    KV kv;
    for (;;) {
      Status st = reader.value()->Next(&kv);
      if (st.IsNotFound()) break;
      I2MR_RETURN_IF_ERROR(st);
      mapper->Map(kv.key, kv.value, &writer);
      ++in_records;
      if (inject_failure && in_records * 2 >= 1) {
        // Fail mid-task (after at least one record) to exercise recovery of
        // partially executed attempts.
        return Status::Aborted("injected map task failure");
      }
    }
    mapper->Flush(&writer);
  }
  metrics->map_input_records += in_records;

  std::unique_ptr<Reducer> combiner;
  if (spec.combiner) combiner = spec.combiner();
  return writer.Finish(combiner.get(), metrics);
}

Status RunReduceTask(const JobSpec& spec, int r, int num_map_tasks,
                     const std::string& job_dir,
                     const ShuffleExchange* exchange, const CostModel& cost,
                     StageMetrics* metrics, int attempt) {
  cost.ChargeTaskStartup();
  bool inject_failure =
      spec.fail_hook &&
      spec.fail_hook(TaskId{TaskId::Kind::kReduce, r, attempt});

  ShuffleReader::Source source;
  source.exchange = exchange;
  source.partition = r;
  source.spill_files.reserve(num_map_tasks);
  for (int m = 0; m < num_map_tasks; ++m) {
    source.spill_files.push_back(
        JoinPath(MapTaskDir(job_dir, m), PartFileName(r)));
  }
  auto reader = ShuffleReader::Open(source, cost, metrics);
  if (!reader.ok()) return reader.status();

  if (inject_failure) return Status::Aborted("injected reduce task failure");

  std::string final_path = JoinPath(spec.output_dir, PartFileName(r));
  std::string tmp_path = final_path + ".tmp" + std::to_string(attempt);
  auto w = RecordWriter::Create(tmp_path);
  if (!w.ok()) return w.status();

  auto reducer = spec.reducer();
  FileReduceContext ctx(w.value().get());
  {
    ScopedTimer t(&metrics->reduce_ns);
    std::string key;
    std::vector<std::string> values;
    int64_t groups = 0;
    while (reader.value()->NextGroup(&key, &values)) {
      reducer->Reduce(key, values, &ctx);
      ++groups;
    }
    metrics->reduce_groups += groups;
  }
  I2MR_RETURN_IF_ERROR(ctx.status());
  I2MR_RETURN_IF_ERROR(w.value()->Close());
  metrics->reduce_output_records += ctx.count();
  return RenameFile(tmp_path, final_path);
}

Status RunTaskWithRetries(const JobSpec& spec, TaskId::Kind kind, int index,
                          const std::function<Status(int attempt)>& attempt_fn) {
  Status last;
  for (int attempt = 0; attempt < spec.max_attempts; ++attempt) {
    last = attempt_fn(attempt);
    if (last.ok()) return last;
    LOG_DEBUG << (kind == TaskId::Kind::kMap ? "map" : "reduce") << " task "
              << index << " attempt " << attempt
              << " failed: " << last.ToString();
  }
  return last;
}

}  // namespace internal
}  // namespace i2mr
