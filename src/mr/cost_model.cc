#include "mr/cost_model.h"

#include <chrono>
#include <thread>

namespace i2mr {
namespace {

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

void CostModel::ChargeTransfer(uint64_t bytes) const {
  double ms = net_latency_ms;
  if (net_mb_per_s > 0.0) {
    ms += static_cast<double>(bytes) / (net_mb_per_s * 1e6) * 1e3;
  }
  SleepMs(ms);
}

void CostModel::ChargeJobStartup() const { SleepMs(job_startup_ms); }

void CostModel::ChargeTaskStartup() const { SleepMs(task_startup_ms); }

}  // namespace i2mr
