#include "mr/cluster.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/timer.h"
#include "io/env.h"

namespace i2mr {
namespace {

// Process-wide book-keeping for clusters sharing a root (shard clusters
// under one serving root, or a test re-attaching while another instance is
// live). Guards the re-attach jobs/ wipe and hands out the per-instance
// token that namespaces job scratch dirs.
std::mutex g_cluster_roots_mu;
std::map<std::string, int>& LiveClusterRoots() {
  static auto* roots = new std::map<std::string, int>();
  return *roots;
}

int NextClusterInstanceToken() {
  static std::atomic<int> next{0};
  return next.fetch_add(1);
}

}  // namespace

LocalCluster::LocalCluster(std::string root, int num_workers, CostModel cost,
                           bool reset)
    : root_(std::move(root)),
      num_workers_(num_workers),
      cost_(cost),
      dfs_(JoinPath(root_, "dfs")),
      pool_(num_workers, "worker"),
      instance_(NextClusterInstanceToken()) {
  bool first_attach;
  {
    std::lock_guard<std::mutex> lock(g_cluster_roots_mu);
    first_attach = ++LiveClusterRoots()[root_] == 1;
  }
  if (reset) {
    I2MR_CHECK_OK(ResetDir(root_));
  } else if (first_attach) {
    // Re-attach keeps durable state, but jobs/ is per-process shuffle
    // scratch: spill files from a job that crashed mid-run must not
    // survive — a replayed job re-using the same job dir would merge the
    // stale spills into its reduce input. Only the FIRST attacher clears
    // it: a second instance sharing the root (N shards under one parent)
    // must not wipe a sibling's in-flight job dirs, and its own job dirs
    // are collision-free by instance token anyway.
    I2MR_CHECK_OK(ResetDir(JoinPath(root_, "jobs")));
  }
  I2MR_CHECK_OK(CreateDirs(JoinPath(root_, "dfs")));
  I2MR_CHECK_OK(CreateDirs(JoinPath(root_, "workers")));
  I2MR_CHECK_OK(CreateDirs(JoinPath(root_, "jobs")));
  for (int w = 0; w < num_workers_; ++w) {
    I2MR_CHECK_OK(CreateDirs(WorkerDir(w)));
  }
}

LocalCluster::~LocalCluster() {
  std::lock_guard<std::mutex> lock(g_cluster_roots_mu);
  auto it = LiveClusterRoots().find(root_);
  if (it != LiveClusterRoots().end() && --it->second <= 0) {
    LiveClusterRoots().erase(it);
  }
}

std::string LocalCluster::WorkerDir(int w) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "workers/w%03d", w);
  return JoinPath(root_, buf);
}

std::string LocalCluster::NewJobDir(const std::string& name) {
  int seq = job_seq_.fetch_add(1);
  // The instance token keeps job dirs disjoint across cluster instances
  // sharing one root (each instance has its own job_seq_ starting at 0).
  char buf[48];
  std::snprintf(buf, sizeof(buf), "-i%03d-%05d", instance_, seq);
  std::string dir = JoinPath(root_, "jobs/" + name + buf);
  I2MR_CHECK_OK(CreateDirs(dir));
  return dir;
}

JobResult LocalCluster::RunJob(const JobSpec& spec) {
  JobResult result;
  result.metrics = std::make_shared<StageMetrics>();
  WallTimer wall;

  if (!spec.mapper || !spec.reducer) {
    result.status = Status::InvalidArgument("job needs mapper and reducer");
    return result;
  }
  if (spec.num_reduce_tasks <= 0) {
    result.status = Status::InvalidArgument("num_reduce_tasks must be > 0");
    return result;
  }
  if (spec.output_dir.empty()) {
    result.status = Status::InvalidArgument("output_dir required");
    return result;
  }
  Status st = CreateDirs(spec.output_dir);
  if (!st.ok()) {
    result.status = st;
    return result;
  }

  cost_.ChargeJobStartup();
  std::string job_dir = NewJobDir(spec.name);
  const int num_maps = static_cast<int>(spec.input_parts.size());
  StageMetrics* metrics = result.metrics.get();

  JobSpec effective = spec;
  if (effective.remote_prefix.empty()) {
    effective.remote_prefix = dfs_.root();
  }
  const JobSpec& job = effective;

  // In-memory shuffle exchange for this job (null = disk spills only).
  std::unique_ptr<ShuffleExchange> exchange;
  if (EffectiveShuffleMode(job.shuffle_mode) == ShuffleMode::kInMemory) {
    exchange = std::make_unique<ShuffleExchange>(job.num_reduce_tasks,
                                                 job.shuffle_memory_bytes);
  }

  // Map phase.
  std::vector<Status> map_status(num_maps);
  ParallelFor(&pool_, num_maps, [&](int m) {
    map_status[m] = internal::RunTaskWithRetries(
        spec, TaskId::Kind::kMap, m, [&](int attempt) {
          return internal::RunMapTask(job, m, job.input_parts[m], job_dir,
                                      exchange.get(), cost_, metrics, attempt);
        });
  });
  for (int m = 0; m < num_maps; ++m) {
    if (!map_status[m].ok()) {
      result.status = map_status[m];
      return result;
    }
  }

  // Reduce phase.
  std::vector<Status> reduce_status(job.num_reduce_tasks);
  ParallelFor(&pool_, job.num_reduce_tasks, [&](int r) {
    reduce_status[r] = internal::RunTaskWithRetries(
        spec, TaskId::Kind::kReduce, r, [&](int attempt) {
          return internal::RunReduceTask(job, r, num_maps, job_dir,
                                         exchange.get(), cost_, metrics,
                                         attempt);
        });
  });
  for (int r = 0; r < job.num_reduce_tasks; ++r) {
    if (!reduce_status[r].ok()) {
      result.status = reduce_status[r];
      return result;
    }
  }

  for (int r = 0; r < job.num_reduce_tasks; ++r) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "part-%05d.dat", r);
    result.output_parts.push_back(JoinPath(job.output_dir, buf));
  }

  // Reclaim shuffle spill space.
  Status cleanup = RemoveAll(job_dir);
  if (!cleanup.ok()) LOG_WARN << "job dir cleanup failed: " << cleanup.ToString();

  result.wall_ms = wall.ElapsedMillis();
  result.status = Status::OK();
  return result;
}

}  // namespace i2mr
