#include "mr/shuffle.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "common/trace.h"
#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

std::string SpillPath(const std::string& dir, int r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05d.dat", r);
  return JoinPath(dir, buf);
}

// ReduceContext that collects emitted pairs into a flat run. Enforces the
// same field bound the disk path would (combiner output is re-spilled by
// RecordWriter under disk mode; the two paths must fail identically).
class CollectingContext : public ReduceContext {
 public:
  explicit CollectingContext(FlatKVRun* out) : out_(out) {}
  void Emit(std::string_view key, std::string_view value) override {
    if (key.size() > kMaxRecordFieldLen || value.size() > kMaxRecordFieldLen) {
      oversize_ = true;
      return;
    }
    out_->Append(key, value);
  }
  bool oversize() const { return oversize_; }

 private:
  FlatKVRun* out_;
  bool oversize_ = false;
};

}  // namespace

ShuffleMode EffectiveShuffleMode(ShuffleMode requested) {
  const char* force = std::getenv("I2MR_FORCE_DISK_SHUFFLE");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return ShuffleMode::kDisk;
  }
  return requested;
}

Status SortAndCombine(FlatKVRun* run, Reducer* combiner) {
  run->Sort();
  if (combiner == nullptr || run->empty()) return Status::OK();
  FlatKVRun combined;
  combined.Reserve(run->size(), run->memory_bytes() / 2);
  CollectingContext ctx(&combined);
  std::string key;
  std::vector<std::string> values;
  size_t i = 0;
  while (i < run->size()) {
    size_t j = i;
    key.assign(run->key(i));
    values.clear();
    while (j < run->size() && run->key(j) == key) {
      values.emplace_back(run->value(j));
      ++j;
    }
    combiner->Reduce(key, values, &ctx);
    i = j;
  }
  if (ctx.oversize()) {
    return Status::InvalidArgument("record field exceeds length limit");
  }
  combined.Sort();
  *run = std::move(combined);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ShuffleExchange
// ---------------------------------------------------------------------------

ShuffleExchange::ShuffleExchange(int num_partitions,
                                 size_t memory_budget_bytes)
    : budget_(memory_budget_bytes), runs_(num_partitions) {}

bool ShuffleExchange::Offer(int partition, const std::string& writer,
                            FlatKVRun&& run) {
  uint64_t bytes = run.memory_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  auto& runs = runs_[partition];
  for (auto it = runs.begin(); it != runs.end(); ++it) {
    if (it->first != writer) continue;
    // Retried attempt re-offering this partition: replace, don't
    // duplicate. If the replacement no longer fits, drop the stale run too
    // — the caller spills to disk, which becomes the partition's only
    // source for this writer.
    held_ -= it->second.memory_bytes();
    if (held_ + bytes > budget_) {
      runs.erase(it);
      return false;
    }
    held_ += bytes;
    it->second = std::move(run);
    return true;
  }
  if (held_ + bytes > budget_) return false;
  held_ += bytes;
  runs.emplace_back(writer, std::move(run));
  return true;
}

std::vector<const FlatKVRun*> ShuffleExchange::Borrow(int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const FlatKVRun*> out;
  out.reserve(runs_[partition].size());
  for (const auto& [id, run] : runs_[partition]) out.push_back(&run);
  return out;
}

uint64_t ShuffleExchange::bytes_held() const {
  std::lock_guard<std::mutex> lock(mu_);
  return held_;
}

// ---------------------------------------------------------------------------
// ShuffleWriter
// ---------------------------------------------------------------------------

ShuffleWriter::ShuffleWriter(int num_partitions, const Partitioner* partitioner,
                             std::string dir, ShuffleExchange* exchange)
    : num_partitions_(num_partitions),
      partitioner_(partitioner),
      dir_(std::move(dir)),
      exchange_(exchange),
      buffers_(num_partitions) {
  // Pre-size every partition run so the first few thousand Emits never
  // reallocate (the old per-Emit push_back of a KV pair re-grew a
  // vector<KV> from zero in every map task).
  for (auto& buf : buffers_) buf.Reserve(256, 16u << 10);
}

void ShuffleWriter::Emit(std::string_view key, std::string_view value) {
  // Same bound the disk path enforces in RecordWriter::Add — and the flat
  // refs hold 32-bit lengths, so an unchecked huge field would silently
  // truncate. Record the violation; Finish reports it as the disk path
  // would (Emit's MapContext signature has no status channel).
  if (key.size() > kMaxRecordFieldLen || value.size() > kMaxRecordFieldLen) {
    oversize_field_ = true;
    return;
  }
  uint32_t r = partitioner_->Partition(key, num_partitions_);
  buffers_[r].Append(key, value);
  ++records_;
}

Status ShuffleWriter::Finish(Reducer* combiner, StageMetrics* metrics) {
  if (oversize_field_) {
    return Status::InvalidArgument("record field exceeds length limit");
  }
  bool dirs_created = false;
  for (int r = 0; r < num_partitions_; ++r) {
    auto& buf = buffers_[r];
    if (buf.empty()) continue;
    {
      TRACE_SPAN("task.sort", "part=%d", r);
      ScopedTimer t(&metrics->sort_ns);
      I2MR_RETURN_IF_ERROR(SortAndCombine(&buf, combiner));
    }
    if (exchange_ != nullptr && exchange_->Offer(r, dir_, std::move(buf))) {
      buf = FlatKVRun();
      // A prior attempt of this map task may have spilled this partition
      // (budget pressure since relieved): the in-memory run supersedes it.
      std::string stale = SpillPath(dir_, r);
      if (FileExists(stale)) I2MR_RETURN_IF_ERROR(RemoveAll(stale));
      continue;
    }
    // Disk mode, or this run overflowed the exchange budget: spill.
    if (!dirs_created) {
      I2MR_RETURN_IF_ERROR(CreateDirs(dir_));
      dirs_created = true;
    }
    auto w = RecordWriter::Create(SpillPath(dir_, r));
    if (!w.ok()) return w.status();
    for (size_t i = 0; i < buf.size(); ++i) {
      I2MR_RETURN_IF_ERROR(w.value()->Add(buf.key(i), buf.value(i)));
    }
    I2MR_RETURN_IF_ERROR(w.value()->Close());
    buf.Clear();
  }
  metrics->map_output_records += records_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ShuffleReader
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<ShuffleReader>> ShuffleReader::Open(
    const std::vector<std::string>& spill_files, const CostModel& cost,
    StageMetrics* metrics) {
  Source source;
  source.spill_files = spill_files;
  return Open(source, cost, metrics);
}

StatusOr<std::unique_ptr<ShuffleReader>> ShuffleReader::Open(
    const Source& source, const CostModel& cost, StageMetrics* metrics) {
  auto reader = std::unique_ptr<ShuffleReader>(new ShuffleReader());

  // Fetch stage: pull every map task's run for this partition. Each run —
  // in-memory or spill file — is one simulated network transfer, charged
  // from its record-file size so both paths cost the same.
  {
    TRACE_SPAN("task.shuffle", "part=%d", source.partition);
    ScopedTimer t(&metrics->shuffle_ns);
    if (source.exchange != nullptr) {
      for (const FlatKVRun* run : source.exchange->Borrow(source.partition)) {
        if (run->empty()) continue;
        cost.ChargeTransfer(run->serialized_bytes());
        metrics->shuffle_bytes +=
            static_cast<int64_t>(run->serialized_bytes());
        reader->runs_.push_back(run);
      }
    }
    for (const auto& path : source.spill_files) {
      if (!FileExists(path)) continue;
      auto sz = FileSize(path);
      if (!sz.ok()) return sz.status();
      auto run = ReadRecordsFlat(path);
      if (!run.ok()) return run.status();
      cost.ChargeTransfer(*sz);
      metrics->shuffle_bytes += static_cast<int64_t>(*sz);
      if (!run->empty()) reader->owned_runs_.push_back(std::move(*run));
    }
    for (const auto& run : reader->owned_runs_) reader->runs_.push_back(&run);
  }

  // Sort stage: merge the sorted runs. Only the 8-byte refs move; the
  // comparator reads key/value views out of the runs' arenas.
  {
    TRACE_SPAN("task.sort", "part=%d merge", source.partition);
    ScopedTimer t(&metrics->sort_ns);
    size_t total = 0;
    for (const auto* r : reader->runs_) total += r->size();
    reader->merged_.reserve(total);
    auto less = [&](const Ref& a, const Ref& b) {
      int c = reader->KeyOf(a).compare(reader->KeyOf(b));
      if (c != 0) return c < 0;
      return reader->ValueOf(a) < reader->ValueOf(b);
    };
    for (uint32_t run = 0; run < reader->runs_.size(); ++run) {
      size_t mid = reader->merged_.size();
      for (uint32_t i = 0; i < reader->runs_[run]->size(); ++i) {
        reader->merged_.push_back(Ref{run, i});
      }
      if (mid > 0) {
        std::inplace_merge(reader->merged_.begin(),
                           reader->merged_.begin() + mid,
                           reader->merged_.end(), less);
      }
    }
  }
  return reader;
}

bool ShuffleReader::NextGroup(std::string_view* key,
                              std::vector<std::string_view>* values) {
  if (pos_ >= merged_.size()) return false;
  *key = KeyOf(merged_[pos_]);
  values->clear();
  while (pos_ < merged_.size() && KeyOf(merged_[pos_]) == *key) {
    values->push_back(ValueOf(merged_[pos_]));
    ++pos_;
  }
  return true;
}

bool ShuffleReader::NextGroup(std::string* key,
                              std::vector<std::string>* values) {
  std::string_view key_view;
  std::vector<std::string_view> value_views;
  if (!NextGroup(&key_view, &value_views)) return false;
  key->assign(key_view);
  values->clear();
  values->reserve(value_views.size());
  for (const auto& v : value_views) values->emplace_back(v);
  return true;
}

}  // namespace i2mr
