#include "mr/shuffle.h"

#include <algorithm>
#include <cstdio>

#include "common/timer.h"
#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

std::string SpillPath(const std::string& dir, int r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05d.dat", r);
  return JoinPath(dir, buf);
}

// ReduceContext that collects emitted pairs into a vector.
class CollectingContext : public ReduceContext {
 public:
  explicit CollectingContext(std::vector<KV>* out) : out_(out) {}
  void Emit(std::string_view key, std::string_view value) override {
    out_->push_back(KV{std::string(key), std::string(value)});
  }

 private:
  std::vector<KV>* out_;
};

}  // namespace

void SortAndCombine(std::vector<KV>* records, Reducer* combiner) {
  std::sort(records->begin(), records->end());
  if (combiner == nullptr || records->empty()) return;
  std::vector<KV> combined;
  CollectingContext ctx(&combined);
  size_t i = 0;
  std::vector<std::string> values;
  while (i < records->size()) {
    size_t j = i;
    values.clear();
    while (j < records->size() && (*records)[j].key == (*records)[i].key) {
      values.push_back(std::move((*records)[j].value));
      ++j;
    }
    combiner->Reduce((*records)[i].key, values, &ctx);
    i = j;
  }
  std::sort(combined.begin(), combined.end());
  *records = std::move(combined);
}

// ---------------------------------------------------------------------------
// ShuffleWriter
// ---------------------------------------------------------------------------

ShuffleWriter::ShuffleWriter(int num_partitions, const Partitioner* partitioner,
                             std::string dir)
    : num_partitions_(num_partitions),
      partitioner_(partitioner),
      dir_(std::move(dir)),
      buffers_(num_partitions) {}

void ShuffleWriter::Emit(std::string_view key, std::string_view value) {
  uint32_t r = partitioner_->Partition(key, num_partitions_);
  buffers_[r].push_back(KV{std::string(key), std::string(value)});
  ++records_;
}

Status ShuffleWriter::Finish(Reducer* combiner, StageMetrics* metrics) {
  I2MR_RETURN_IF_ERROR(CreateDirs(dir_));
  for (int r = 0; r < num_partitions_; ++r) {
    auto& buf = buffers_[r];
    if (buf.empty()) continue;
    {
      ScopedTimer t(&metrics->sort_ns);
      SortAndCombine(&buf, combiner);
    }
    auto w = RecordWriter::Create(SpillPath(dir_, r));
    if (!w.ok()) return w.status();
    for (const auto& kv : buf) I2MR_RETURN_IF_ERROR(w.value()->Add(kv));
    I2MR_RETURN_IF_ERROR(w.value()->Close());
    buf.clear();
    buf.shrink_to_fit();
  }
  metrics->map_output_records += records_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ShuffleReader
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<ShuffleReader>> ShuffleReader::Open(
    const std::vector<std::string>& spill_files, const CostModel& cost,
    StageMetrics* metrics) {
  auto reader = std::unique_ptr<ShuffleReader>(new ShuffleReader());

  // Fetch stage: pull every map task's spill for this partition. Each file
  // is one simulated network transfer.
  std::vector<std::vector<KV>> runs;
  {
    ScopedTimer t(&metrics->shuffle_ns);
    for (const auto& path : spill_files) {
      if (!FileExists(path)) continue;
      auto sz = FileSize(path);
      if (!sz.ok()) return sz.status();
      auto recs = ReadRecords(path);
      if (!recs.ok()) return recs.status();
      cost.ChargeTransfer(*sz);
      metrics->shuffle_bytes += static_cast<int64_t>(*sz);
      if (!recs->empty()) runs.push_back(std::move(*recs));
    }
  }

  // Sort stage: merge the sorted runs.
  {
    ScopedTimer t(&metrics->sort_ns);
    size_t total = 0;
    for (const auto& r : runs) total += r.size();
    reader->records_.reserve(total);
    if (runs.size() == 1) {
      reader->records_ = std::move(runs[0]);
    } else {
      for (auto& r : runs) {
        size_t mid = reader->records_.size();
        reader->records_.insert(reader->records_.end(),
                                std::make_move_iterator(r.begin()),
                                std::make_move_iterator(r.end()));
        std::inplace_merge(reader->records_.begin(),
                           reader->records_.begin() + mid,
                           reader->records_.end());
      }
    }
  }
  return reader;
}

bool ShuffleReader::NextGroup(std::string* key, std::vector<std::string>* values) {
  if (pos_ >= records_.size()) return false;
  *key = records_[pos_].key;
  values->clear();
  while (pos_ < records_.size() && records_[pos_].key == *key) {
    values->push_back(std::move(records_[pos_].value));
    ++pos_;
  }
  return true;
}

}  // namespace i2mr
