// Public MapReduce programming interfaces (paper §2):
//   map(K1, V1)        -> [<K2, V2>]
//   reduce(K2, {V2})   -> [<K3, V3>]
// plus the optional map-side Combiner and the shuffle Partitioner.
#ifndef I2MR_MR_API_H_
#define I2MR_MR_API_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace i2mr {

/// Sink for intermediate kv-pairs emitted by a Map function.
class MapContext {
 public:
  virtual ~MapContext() = default;
  virtual void Emit(std::string_view key, std::string_view value) = 0;
};

/// User Map function. One instance per map task; Map() is called once per
/// input record, Flush() once at end-of-input (for map-side aggregation).
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Setup(MapContext* /*ctx*/) {}
  virtual void Map(const std::string& key, const std::string& value,
                   MapContext* ctx) = 0;
  virtual void Flush(MapContext* /*ctx*/) {}
};

/// Sink for final kv-pairs emitted by a Reduce function.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;
  virtual void Emit(std::string_view key, std::string_view value) = 0;
};

/// User Reduce function, called once per distinct intermediate key with all
/// grouped values. Also used as the Combiner interface (run map-side).
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(const std::string& key,
                      const std::vector<std::string>& values,
                      ReduceContext* ctx) = 0;
};

/// Maps an intermediate key to a reduce partition.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual uint32_t Partition(std::string_view key, uint32_t num_partitions) const {
    return static_cast<uint32_t>(Hash64(key) % num_partitions);
  }
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// Convenience adapters for lambda-defined mappers/reducers.
class FnMapper : public Mapper {
 public:
  using Fn = std::function<void(const std::string&, const std::string&, MapContext*)>;
  explicit FnMapper(Fn fn) : fn_(std::move(fn)) {}
  void Map(const std::string& k, const std::string& v, MapContext* ctx) override {
    fn_(k, v, ctx);
  }

 private:
  Fn fn_;
};

class FnReducer : public Reducer {
 public:
  using Fn = std::function<void(const std::string&, const std::vector<std::string>&,
                                ReduceContext*)>;
  explicit FnReducer(Fn fn) : fn_(std::move(fn)) {}
  void Reduce(const std::string& k, const std::vector<std::string>& vs,
              ReduceContext* ctx) override {
    fn_(k, vs, ctx);
  }

 private:
  Fn fn_;
};

}  // namespace i2mr

#endif  // I2MR_MR_API_H_
