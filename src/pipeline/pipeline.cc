#include "pipeline/pipeline.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/codec.h"
#include "common/hash.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/timer.h"
#include "common/trace.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

constexpr const char* kCurrentFile = "CURRENT";
constexpr const char* kManifestFile = "MANIFEST";
constexpr const char* kInflightDelta = "inflight.delta";

std::string PartDirName(int p) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "part-%03d", p);
  return buf;
}

// MANIFEST: [u64 epoch][u64 watermark][u32 crc32-of-first-16-bytes], or —
// when the pipeline belongs to a resharded (generation > 0) fleet —
// [u64 epoch][u64 watermark][u64 generation][u32 crc32-of-first-24-bytes].
// Generation-0 manifests keep the legacy 20-byte form so every existing
// epoch dir (and replica verification of it) stays byte-compatible.
Status WriteManifest(const std::string& path, uint64_t epoch,
                     uint64_t watermark, uint64_t generation, bool sync) {
  std::string payload;
  PutFixed64(&payload, epoch);
  PutFixed64(&payload, watermark);
  if (generation != 0) PutFixed64(&payload, generation);
  std::string data = payload;
  PutFixed32(&data, Crc32(payload));
  return WriteStringToFile(path, data, sync);
}

Status ReadManifest(const std::string& path, uint64_t* epoch,
                    uint64_t* watermark, uint64_t* generation = nullptr) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  if (data->size() != 20 && data->size() != 28) {
    return Status::Corruption("bad manifest size");
  }
  const size_t payload_size = data->size() - 4;
  std::string_view payload(data->data(), payload_size);
  if (DecodeFixed32(data->data() + payload_size) != Crc32(payload)) {
    return Status::Corruption("manifest crc mismatch");
  }
  *epoch = DecodeFixed64(data->data());
  *watermark = DecodeFixed64(data->data() + 8);
  if (generation != nullptr) {
    *generation = payload_size == 24 ? DecodeFixed64(data->data() + 16) : 0;
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// EpochPin
// ---------------------------------------------------------------------------

uint64_t EpochPin::epoch() const { return state_ == nullptr ? 0 : state_->epoch; }

uint64_t EpochPin::watermark() const {
  return state_ == nullptr ? 0 : state_->watermark;
}

const ResultStore* EpochPin::store() const {
  return state_ == nullptr ? nullptr : state_->store.get();
}

const std::string& EpochPin::dir() const {
  static const std::string kEmpty;
  return state_ == nullptr ? kEmpty : state_->dir;
}

StatusOr<std::string> EpochPin::Lookup(const std::string& key) const {
  if (state_ == nullptr) return Status::FailedPrecondition("empty epoch pin");
  const std::string* v = state_->store->Get(key);
  if (v == nullptr) return Status::NotFound("no result for key " + key);
  return *v;
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

Pipeline::Pipeline(LocalCluster* cluster, std::string name,
                   PipelineOptions options)
    : cluster_(cluster), name_(std::move(name)), options_(std::move(options)) {
  // One engine namespace per pipeline: state dirs, checkpoints and job
  // scratch space must never collide across pipelines on a shared cluster.
  options_.spec.name = name_;
  // The pipeline's refresh job is resident: submitted once (bootstrap pays
  // the job-startup charge through the engine's initial Run), then kept
  // loop-alive across epochs instead of re-submitting per refresh.
  options_.engine.charge_job_startup_per_refresh = false;
  engine_ = std::make_unique<IncrementalIterativeEngine>(
      cluster_, options_.spec, options_.engine);
  health_ = options_.health != nullptr ? options_.health
                                       : HealthRegistry::Default();
}

std::string Pipeline::Dir() const {
  return JoinPath(cluster_->root(), "pipeline/" + name_);
}

std::string Pipeline::EpochDirName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "epoch-%08" PRIu64, epoch);
  return buf;
}

std::string Pipeline::CurrentPath() const {
  return JoinPath(Dir(), kCurrentFile);
}

StatusOr<std::unique_ptr<Pipeline>> Pipeline::Open(LocalCluster* cluster,
                                                   const std::string& name,
                                                   PipelineOptions options) {
  std::unique_ptr<Pipeline> p(new Pipeline(cluster, name, std::move(options)));
  I2MR_RETURN_IF_ERROR(p->OpenImpl());
  return p;
}

Status Pipeline::OpenImpl() {
  I2MR_RETURN_IF_ERROR(CreateDirs(Dir()));
  // One durability promise for the whole pipeline: the log must not claim
  // power-failure safety the commit path doesn't match (or vice versa).
  DeltaLogOptions log_options = options_.log;
  log_options.durability = options_.durability;
  auto log = DeltaLog::Open(JoinPath(Dir(), "log"), log_options);
  if (!log.ok()) return log.status();
  log_ = std::move(log.value());

  if (!FileExists(CurrentPath())) {
    // Fresh pipeline: nothing committed yet, Bootstrap() must run first.
    return GarbageCollect(/*keep_dir_name=*/"");
  }

  auto current = ReadFileToString(CurrentPath());
  if (!current.ok()) return current.status();
  std::string epoch_dir = JoinPath(Dir(), *current);
  uint64_t epoch = 0, watermark = 0;
  I2MR_RETURN_IF_ERROR(
      ReadManifest(JoinPath(epoch_dir, kManifestFile), &epoch, &watermark));

  committed_epoch_.store(epoch);
  committed_watermark_.store(watermark);
  // The log's records may all have been purged after the last commit; the
  // next append must still get a sequence above the watermark, or it would
  // look already-consumed and never be refreshed.
  log_->EnsureNextSeqAfter(watermark);
  bootstrapped_.store(true);
  I2MR_RETURN_IF_ERROR(RestoreCommitted());
  I2MR_RETURN_IF_ERROR(GarbageCollect(*current));
  if (pending() > 0) oldest_pending_ns_.store(NowNanos());
  return Status::OK();
}

Status Pipeline::RestoreCommitted() {
  auto current = ReadFileToString(CurrentPath());
  if (!current.ok()) return current.status();
  std::string epoch_dir = JoinPath(Dir(), *current);

  // A fresh engine object: drops any open store handles from a crashed
  // refresh before its on-disk files are overwritten.
  engine_ = std::make_unique<IncrementalIterativeEngine>(
      cluster_, options_.spec, options_.engine);

  const int n = options_.spec.num_partitions;
  for (int p = 0; p < n; ++p) {
    std::string src = JoinPath(epoch_dir, PartDirName(p));
    // The committed snapshot is this pipeline's source of truth: surface a
    // torn or garbled record file now, with the damage located, rather
    // than letting the engine read garbage mid-refresh.
    auto structure_ok = ValidateRecordFile(JoinPath(src, "structure.dat"));
    if (!structure_ok.ok()) return structure_ok.status();
    auto state_ok = ValidateRecordFile(JoinPath(src, "state.dat"));
    if (!state_ok.ok()) return state_ok.status();
    I2MR_RETURN_IF_ERROR(ResetDir(engine_->PartitionDir(p)));
    // Hard links, not copies: O(1) per file. The engine never mutates
    // these inodes in place — every rewrite allocates a fresh inode
    // (WritableFile fresh-inode semantics), and the MRBG store's in-place
    // appends only grow an unindexed tail the committed mrbg.idx never
    // references.
    I2MR_RETURN_IF_ERROR(LinkOrCopyFile(JoinPath(src, "structure.dat"),
                                        engine_->StructurePath(p)));
    I2MR_RETURN_IF_ERROR(
        LinkOrCopyFile(JoinPath(src, "state.dat"), engine_->StatePath(p)));
    std::string mrbg_src = JoinPath(src, "mrbg");
    std::error_code mrbg_ec;
    if (std::filesystem::is_directory(mrbg_src, mrbg_ec)) {
      // Epoch-committed MRBG store image (raw or log-structured): link
      // every file back; MRBGStore::Open works out the layout from the
      // file set (a MANIFEST means log-structured).
      I2MR_RETURN_IF_ERROR(CreateDirs(engine_->MrbgDir(p)));
      auto files = ListFiles(mrbg_src);
      if (!files.ok()) return files.status();
      for (const auto& path : *files) {
        std::string name = path.substr(path.find_last_of('/') + 1);
        I2MR_RETURN_IF_ERROR(
            LinkOrCopyFile(path, JoinPath(engine_->MrbgDir(p), name)));
      }
    } else if (FileExists(JoinPath(src, "mrbg.dat"))) {
      // Epochs staged before the store image moved under mrbg/.
      I2MR_RETURN_IF_ERROR(CreateDirs(engine_->MrbgDir(p)));
      I2MR_RETURN_IF_ERROR(
          LinkOrCopyFile(JoinPath(src, "mrbg.dat"),
                         JoinPath(engine_->MrbgDir(p), "mrbg.dat")));
      I2MR_RETURN_IF_ERROR(
          LinkOrCopyFile(JoinPath(src, "mrbg.idx"),
                         JoinPath(engine_->MrbgDir(p), "mrbg.idx")));
    }
    if (FileExists(JoinPath(src, "remote.dat"))) {
      // Cross-shard remote-edge inbox: committed alongside the state so a
      // recovered shard re-reduces with the same remote contributions.
      auto remote_ok = ValidateRecordFile(JoinPath(src, "remote.dat"));
      if (!remote_ok.ok()) return remote_ok.status();
      I2MR_RETURN_IF_ERROR(
          LinkOrCopyFile(JoinPath(src, "remote.dat"),
                         JoinPath(engine_->PartitionDir(p), "remote.dat")));
    }
  }
  I2MR_RETURN_IF_ERROR(engine_->LoadExisting());

  auto store = ResultStore::Open(JoinPath(epoch_dir, "serving.dat"));
  if (!store.ok()) return store.status();
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    serving_ = std::make_shared<const ResultStore>(std::move(store.value()));
  }
  return Status::OK();
}

Status Pipeline::GarbageCollect(const std::string& keep_dir_name) {
  // error_code overloads throughout: this runs on the serving path, where
  // a transient filesystem error must surface as a Status, not an
  // uncaught std::filesystem_error.
  std::error_code ec;
  std::filesystem::directory_iterator it(Dir(), ec), end;
  if (ec) return Status::IOError("list " + Dir() + ": " + ec.message());
  while (it != end) {
    const auto& entry = *it;
    if (!entry.is_directory(ec) || ec) {
      it.increment(ec);
      if (ec) return Status::IOError("list " + Dir() + ": " + ec.message());
      continue;
    }
    std::string base = entry.path().filename().string();
    std::string path = entry.path().string();
    it.increment(ec);
    if (ec) return Status::IOError("list " + Dir() + ": " + ec.message());
    if (base == "log" || base == keep_dir_name) continue;
    if (base.rfind("epoch-", 0) == 0) {
      // A pinned epoch's dir stays until its last reader lets go; the
      // commit after the release collects it.
      uint64_t e = std::strtoull(base.c_str() + 6, nullptr, 10);
      if (IsPinned(e)) continue;
      I2MR_RETURN_IF_ERROR(RemoveAll(path));
    }
  }
  std::string inflight = JoinPath(Dir(), kInflightDelta);
  if (FileExists(inflight)) I2MR_RETURN_IF_ERROR(RemoveAll(inflight));
  return Status::OK();
}

bool Pipeline::SimulateCrash(uint64_t epoch, const char* stage) {
  bool crash = options_.crash_hook && options_.crash_hook(epoch, stage);
  if (!crash && fault::FaultInjector::Armed()) {
    crash = fault::FaultInjector::Instance()->AtCrashPoint(
        std::string("pipeline/") + stage);
  }
  if (!crash) return false;
  LOG_WARN << "pipeline " << name_ << ": simulated crash in epoch " << epoch
           << " at stage '" << stage << "'";
  dirty_.store(true);
  return true;
}

Status Pipeline::Bootstrap(const std::vector<KV>& structure,
                           const std::vector<KV>& initial_state) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (bootstrapped_.load()) {
    return Status::FailedPrecondition("pipeline already bootstrapped");
  }
  TRACE_SPAN("pipeline.bootstrap", "pipeline=%s", name_.c_str());
  auto run = engine_->RunInitial(structure, initial_state);
  if (!run.ok()) return run.status();
  double commit_ms = 0;
  I2MR_RETURN_IF_ERROR(Commit(/*epoch=*/0, /*watermark=*/0, &commit_ms));
  bootstrapped_.store(true);
  // A failed earlier Bootstrap attempt may have marked the pipeline dirty;
  // the engine now exactly matches the committed snapshot.
  dirty_.store(false);
  return Status::OK();
}

void Pipeline::ArmLagTrigger() {
  std::lock_guard<std::mutex> lock(trigger_mu_);
  if (oldest_pending_ns_.load() == 0) oldest_pending_ns_.store(NowNanos());
}

std::string Pipeline::degraded_reason() const {
  std::lock_guard<std::mutex> lock(degraded_mu_);
  return degraded_reason_;
}

Status Pipeline::AdmitAppend() {
  if (!degraded()) return Status::OK();
  // Elect at most one append per probe interval: the winner of the CAS
  // goes through to the log as the recovery probe, everyone else bounces
  // without touching the (presumed broken) disk.
  int64_t now = NowNanos();
  int64_t next = next_probe_ns_.load(std::memory_order_relaxed);
  if (now >= next &&
      next_probe_ns_.compare_exchange_strong(
          next, now + static_cast<int64_t>(
                          options_.degraded_probe_interval_ms * 1e6))) {
    return Status::OK();
  }
  return Status::Unavailable("pipeline " + name_ +
                             " is degraded (read-only): " + degraded_reason());
}

void Pipeline::EnterDegraded(const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    degraded_reason_ = cause.ToString();
  }
  next_probe_ns_.store(
      NowNanos() +
          static_cast<int64_t>(options_.degraded_probe_interval_ms * 1e6),
      std::memory_order_relaxed);
  bool was = degraded_.exchange(true, std::memory_order_release);
  if (!was) {
    LOG_WARN << "pipeline " << name_
             << ": entering degraded read-only mode: " << cause.ToString();
  }
  // "log closed" (a failed rollback shut the log) needs a reopen to clear;
  // probes can't fix it, so report kFailed instead of kDegraded.
  health_->Report("pipeline." + name_,
                  cause.code() == Status::Code::kFailedPrecondition
                      ? HealthState::kFailed
                      : HealthState::kDegraded,
                  cause.ToString());
}

void Pipeline::ExitDegraded() {
  if (!degraded_.exchange(false, std::memory_order_release)) return;
  {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    degraded_reason_.clear();
  }
  LOG_INFO << "pipeline " << name_
           << ": probe write succeeded, resuming from degraded mode";
  health_->Report("pipeline." + name_, HealthState::kHealthy);
}

StatusOr<uint64_t> Pipeline::Append(const DeltaKV& delta) {
  return AppendBatch({delta});
}

StatusOr<uint64_t> Pipeline::AppendBatch(const std::vector<DeltaKV>& deltas) {
  I2MR_RETURN_IF_ERROR(AdmitAppend());
  bool was_degraded = degraded();
  Status last;
  for (int attempt = 0;; ++attempt) {
    auto seq = log_->AppendBatch(deltas);
    if (seq.ok()) {
      if (was_degraded) ExitDegraded();
      if (!deltas.empty()) ArmLagTrigger();
      return seq;
    }
    last = seq.status();
    // Only I/O errors are worth retrying or degrading over; a rejected
    // batch (InvalidArgument) or a closed log (FailedPrecondition) won't
    // heal with time — though a closed log still flips to read-only so
    // callers stop hammering a dead log.
    if (!last.IsIOError() || attempt >= options_.append_retries) break;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.append_retry_backoff_ms * static_cast<double>(1 << attempt)));
  }
  if (last.IsIOError() ||
      last.code() == Status::Code::kFailedPrecondition) {
    EnterDegraded(last);
  }
  return last;
}

uint64_t Pipeline::pending() const {
  uint64_t last = log_->last_seq();
  uint64_t committed = committed_watermark_.load();
  return last > committed ? last - committed : 0;
}

double Pipeline::pending_lag_ms() const {
  int64_t oldest = oldest_pending_ns_.load();
  if (oldest == 0 || pending() == 0) return 0;
  return (NowNanos() - oldest) / 1e6;
}

bool Pipeline::EpochReady() const {
  if (!bootstrapped_.load()) return false;
  uint64_t p = pending();
  if (p == 0) return false;
  if (p >= options_.min_batch) return true;
  return options_.max_lag_ms >= 0 && pending_lag_ms() >= options_.max_lag_ms;
}

StatusOr<EpochStats> Pipeline::RunEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (!bootstrapped_.load()) {
    return Status::FailedPrecondition("pipeline not bootstrapped");
  }
  if (dirty_.load()) {
    // A previous epoch died after possibly mutating the engine's working
    // dirs: roll back to the committed snapshot before replaying.
    I2MR_RETURN_IF_ERROR(RestoreCommitted());
    dirty_.store(false);
  }
  // A solo epoch supersedes any abandoned coordinated round state.
  inflight_ = false;
  staged_.valid = false;
  staged_.store.reset();

  EpochStats stats;
  stats.epoch = committed_epoch_.load();
  stats.watermark = committed_watermark_.load();

  TRACE_SPAN("pipeline.epoch", "pipeline=%s", name_.c_str());
  WallTimer wall;
  std::vector<SeqDelta> drained;
  {
    TRACE_SPAN("epoch.drain");
    drained = log_->ReadRange(committed_watermark_.load(), UINT64_MAX);
  }
  if (drained.empty()) return stats;
  // Deltas appended past this point are not in this epoch; their max-lag
  // clock must restart from (at latest) now, not from commit time — a
  // long refresh must not extend their freshness deadline.
  const int64_t drain_ns = NowNanos();

  const uint64_t epoch = committed_epoch_.load() + 1;
  const uint64_t watermark = drained.back().seq;

  // Materialize the drained batch as the engine's delta structure input
  // (§3.3 delta file), preserving log order.
  std::vector<DeltaKV> deltas;
  deltas.reserve(drained.size());
  for (auto& rec : drained) deltas.push_back(std::move(rec.delta));
  // The materialized delta-input file is epoch forensics: if the refresh
  // crashes, the batch it was applying is inspectable on disk. Nothing
  // re-reads it on the happy path (the engine consumes the vector), and
  // recovery garbage-collects it.
  std::string inflight = JoinPath(Dir(), kInflightDelta);
  if (options_.materialize_inflight_delta) {
    I2MR_RETURN_IF_ERROR(WriteDeltaRecords(inflight, deltas));
  }

  if (SimulateCrash(epoch, "drain")) {
    return Status::Aborted("simulated crash after drain");
  }

  WallTimer refresh;
  auto run = engine_->RunIncremental(deltas);
  if (!run.ok()) {
    dirty_.store(true);
    return run.status();
  }
  stats.refresh_ms = refresh.ElapsedMillis();
  stats.iterations = run->iterations.size();
  stats.mrbg_turned_off = run->mrbg_turned_off;
  for (const auto& it : run->iterations) {
    stats.refresh_map_ms += it.map_ms;
    stats.refresh_shuffle_ms += it.shuffle_ms;
    stats.refresh_sort_ms += it.sort_ms;
    stats.refresh_reduce_ms += it.reduce_ms;
    stats.refresh_merge_ms += it.merge_ms;
  }

  if (SimulateCrash(epoch, "refresh")) {
    return Status::Aborted("simulated crash after refresh");
  }

  Status st = Commit(epoch, watermark, &stats.commit_ms, drain_ns);
  if (!st.ok()) {
    dirty_.store(true);
    return st;
  }

  // The epoch is committed; like Commit's own GC, cleanup failures here
  // must not report a durably committed epoch as failed.
  Status cleaned = RemoveAll(inflight);
  if (!cleaned.ok()) {
    LOG_WARN << "pipeline " << name_ << ": inflight cleanup failed ("
             << cleaned.ToString() << ")";
  }
  stats.epoch = epoch;
  stats.watermark = watermark;
  stats.deltas_applied = drained.size();
  stats.wall_ms = wall.ElapsedMillis();
  return stats;
}

Status Pipeline::Commit(uint64_t epoch, uint64_t watermark, double* commit_ms,
                        int64_t pending_since_ns) {
  WallTimer timer;
  I2MR_RETURN_IF_ERROR(
      StageEpochLocked(epoch, watermark, pending_since_ns, nullptr));

  if (SimulateCrash(epoch, "commit")) {
    // The epoch dir landed but CURRENT still names the previous epoch: on
    // recovery the orphan dir is garbage-collected and the log replayed.
    return Status::Aborted("simulated crash mid-commit");
  }

  I2MR_RETURN_IF_ERROR(FinalizeStagedLocked());
  I2MR_RETURN_IF_ERROR(CleanupCommittedLocked());
  if (commit_ms != nullptr) *commit_ms = timer.ElapsedMillis();
  return Status::OK();
}

Status Pipeline::StageEpochLocked(uint64_t epoch, uint64_t watermark,
                                  int64_t pending_since_ns,
                                  double* commit_ms) {
  TRACE_SPAN("epoch.stage", "pipeline=%s epoch=%llu", name_.c_str(),
             static_cast<unsigned long long>(epoch));
  WallTimer timer;
  const int n = options_.spec.num_partitions;
  const std::string final_name = EpochDirName(epoch);
  const std::string final_dir = JoinPath(Dir(), final_name);
  const std::string tmp = JoinPath(Dir(), final_name + ".tmp");
  // A previous attempt at this epoch may have left its dir behind (commit
  // failed after the rename): remove it first — the rename below would hit
  // ENOTEMPTY, and the serving snapshot must not load its stale contents.
  std::error_code ec;
  if (std::filesystem::exists(final_dir, ec)) {
    I2MR_RETURN_IF_ERROR(RemoveAll(final_dir));
  }
  if (ec) return Status::IOError("stat " + final_dir + ": " + ec.message());
  I2MR_RETURN_IF_ERROR(ResetDir(tmp));

  const bool sync = options_.durability == DurabilityMode::kPowerFailure;
  // Snapshot the engine's working files by hard link — O(1) per file
  // instead of O(live bytes) per epoch. Safe because nothing ever mutates
  // a committed inode: rewrites allocate fresh inodes (WritableFile
  // fresh-inode semantics), and the MRBG store's in-place appends only
  // grow a tail past everything this epoch's mrbg.idx references.
  // LinkOrCopyFile falls back to a byte copy across devices.
  std::vector<std::string> snapshot_files;
  for (int p = 0; p < n; ++p) {
    std::string pdir = JoinPath(tmp, PartDirName(p));
    I2MR_RETURN_IF_ERROR(CreateDirs(pdir));
    I2MR_RETURN_IF_ERROR(LinkOrCopyFile(engine_->StructurePath(p),
                                        JoinPath(pdir, "structure.dat")));
    I2MR_RETURN_IF_ERROR(
        LinkOrCopyFile(engine_->StatePath(p), JoinPath(pdir, "state.dat")));
    snapshot_files.push_back(JoinPath(pdir, "structure.dat"));
    snapshot_files.push_back(JoinPath(pdir, "state.dat"));
    // MRBG store image under pdir/mrbg/: the engine picks the file set —
    // a frozen prefix of every segment plus a manifest naming exactly
    // those lengths (log-structured), or mrbg.dat + mrbg.idx (raw). Safe
    // concurrently with the store's background compactor: compaction
    // installs fresh inodes and never mutates linked ones.
    size_t before = snapshot_files.size();
    I2MR_RETURN_IF_ERROR(engine_->SnapshotMrbgPartition(
        p, JoinPath(pdir, "mrbg"), &snapshot_files));
    if (sync && snapshot_files.size() > before) {
      I2MR_RETURN_IF_ERROR(SyncDir(JoinPath(pdir, "mrbg")));
    }
    std::string remote_dat = JoinPath(engine_->PartitionDir(p), "remote.dat");
    if (FileExists(remote_dat)) {
      // Cross-shard inbox: committed with the state it was reduced into.
      I2MR_RETURN_IF_ERROR(
          LinkOrCopyFile(remote_dat, JoinPath(pdir, "remote.dat")));
      snapshot_files.push_back(JoinPath(pdir, "remote.dat"));
    }
    if (sync) {
      // The partition dir's entries (the links) must also survive.
      I2MR_RETURN_IF_ERROR(SyncDir(pdir));
    }
  }
  if (sync) {
    // The linked inodes were written through the engine's (unsynced)
    // handles; flush their pages before the MANIFEST claims the snapshot
    // is durable.
    for (const auto& f : snapshot_files) I2MR_RETURN_IF_ERROR(SyncFile(f));
  }

  // The serving snapshot: one ResultStore rooted at the post-rename path
  // (so the long-lived serving object never points into the .tmp dir),
  // persisted into the tmp dir via SaveAs. Built now, while failures are
  // still safe to report — past the CURRENT rename nothing may fail.
  auto snapshot = engine_->StateSnapshot();
  if (!snapshot.ok()) return snapshot.status();
  auto serving_store = ResultStore::Open(JoinPath(final_dir, "serving.dat"));
  if (!serving_store.ok()) return serving_store.status();
  for (const auto& kv : *snapshot) serving_store->Put(kv.key, kv.value);
  I2MR_RETURN_IF_ERROR(serving_store->SaveAs(JoinPath(tmp, "serving.dat")));
  if (sync) I2MR_RETURN_IF_ERROR(SyncFile(JoinPath(tmp, "serving.dat")));

  I2MR_RETURN_IF_ERROR(WriteManifest(JoinPath(tmp, kManifestFile), epoch,
                                     watermark, options_.generation, sync));
  if (sync) I2MR_RETURN_IF_ERROR(SyncDir(tmp));
  I2MR_RETURN_IF_ERROR(RenameFile(tmp, final_dir));
  if (sync) I2MR_RETURN_IF_ERROR(SyncDir(Dir()));

  // The epoch is staged: everything is durable on disk, but CURRENT still
  // names the previous epoch — a crash here rolls back cleanly, which is
  // exactly what the cross-shard barrier commit needs between its prepare
  // and decide phases.
  staged_.valid = true;
  staged_.epoch = epoch;
  staged_.watermark = watermark;
  staged_.pending_since_ns = pending_since_ns;
  staged_.final_name = final_name;
  staged_.store =
      std::make_unique<ResultStore>(std::move(serving_store.value()));
  {
    // Everything the epoch will commit is durable under its final dir
    // name; a replica shipper may start copying it out now.
    std::lock_guard<std::mutex> listener_lock(listener_mu_);
    if (listener_.on_staged) listener_.on_staged(epoch, final_dir);
  }
  if (commit_ms != nullptr) *commit_ms = timer.ElapsedMillis();
  return Status::OK();
}

Status Pipeline::FinalizeStagedLocked() {
  if (!staged_.valid) {
    return Status::FailedPrecondition("no staged epoch to finalize");
  }
  TRACE_SPAN("epoch.flip", "pipeline=%s epoch=%llu", name_.c_str(),
             static_cast<unsigned long long>(staged_.epoch));
  const bool sync = options_.durability == DurabilityMode::kPowerFailure;
  // The point of no return: CURRENT now names the new epoch. In
  // power-failure mode the rename itself is made durable (SyncDir), so an
  // acknowledged commit can never roll back to the previous epoch.
  std::string current_tmp = CurrentPath() + ".tmp";
  I2MR_RETURN_IF_ERROR(
      WriteStringToFile(current_tmp, staged_.final_name, sync));
  I2MR_RETURN_IF_ERROR(RenameFile(current_tmp, CurrentPath()));
  if (sync) I2MR_RETURN_IF_ERROR(SyncDir(Dir()));

  {
    // One publication: PinServing reads (epoch, store) under the same
    // mutex, so a pin can never pair the new epoch id with the old store
    // (or vice versa) — no half-committed view is observable.
    std::lock_guard<std::mutex> lock(serving_mu_);
    committed_epoch_.store(staged_.epoch);
    committed_watermark_.store(staged_.watermark);
    serving_ = std::shared_ptr<const ResultStore>(std::move(staged_.store));
  }
  {
    // Under trigger_mu_: an append that raced past the pending() read will
    // re-arm the clock after us, never the other way round. Deltas that
    // arrived mid-refresh get their clock backdated to the drain point —
    // an upper bound on their wait so far — so the max-lag trigger fires
    // no later than promised.
    std::lock_guard<std::mutex> trigger_lock(trigger_mu_);
    int64_t since =
        staged_.pending_since_ns != 0 ? staged_.pending_since_ns : NowNanos();
    oldest_pending_ns_.store(pending() > 0 ? since : 0);
  }
  const uint64_t committed_epoch = staged_.epoch;
  const uint64_t committed_watermark = staged_.watermark;
  const std::string committed_dir = JoinPath(Dir(), staged_.final_name);
  TRACE_INSTANT("epoch.committed", "pipeline=%s epoch=%llu", name_.c_str(),
                static_cast<unsigned long long>(committed_epoch));
  // The engine's working state is exactly what was just committed.
  bootstrapped_.store(true);
  dirty_.store(false);
  inflight_ = false;
  staged_.valid = false;
  staged_.store.reset();
  {
    // Past the point of no return: followers may now serve this epoch.
    std::lock_guard<std::mutex> listener_lock(listener_mu_);
    if (listener_.on_committed) {
      listener_.on_committed(committed_epoch, committed_dir,
                             committed_watermark);
    }
  }
  return Status::OK();
}

void Pipeline::SetEpochListener(EpochListener listener) {
  // listener_mu_ is held across callback invocations, so this swap waits
  // out an in-flight notification: after SetEpochListener({}) returns, no
  // further callback can run.
  std::lock_guard<std::mutex> lock(listener_mu_);
  listener_ = std::move(listener);
}

Status Pipeline::ReadEpochManifest(const std::string& dir, uint64_t* epoch,
                                   uint64_t* watermark) {
  return ReadManifest(JoinPath(dir, kManifestFile), epoch, watermark);
}

Status Pipeline::ReadEpochManifest(const std::string& dir, uint64_t* epoch,
                                   uint64_t* watermark, uint64_t* generation) {
  return ReadManifest(JoinPath(dir, kManifestFile), epoch, watermark,
                      generation);
}

Status Pipeline::CleanupCommittedLocked() {
  TRACE_SPAN("epoch.cleanup", "pipeline=%s", name_.c_str());
  // Past the point of no return the epoch IS committed: cleanup failures
  // are logged, not reported — reporting them would mark a durably
  // committed epoch as failed and trigger a needless restore + replay.
  Status gc = GarbageCollect(EpochDirName(committed_epoch_.load()));
  if (!gc.ok()) {
    LOG_WARN << "pipeline " << name_ << ": post-commit GC failed ("
             << gc.ToString() << "); stale dirs remain until next commit";
  }
  if (options_.purge_log_on_commit) {
    Status purged = log_->PurgeThrough(committed_watermark_.load());
    if (!purged.ok()) {
      LOG_WARN << "pipeline " << name_ << ": post-commit log purge failed ("
               << purged.ToString() << "); consumed records retained";
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Coordinated (cross-shard) epochs
// ---------------------------------------------------------------------------

Status Pipeline::BootstrapPrepare(const std::vector<KV>& structure,
                                  const std::vector<KV>& initial_state) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (bootstrapped_.load()) {
    return Status::FailedPrecondition("pipeline already bootstrapped");
  }
  TRACE_SPAN("pipeline.bootstrap", "pipeline=%s", name_.c_str());
  auto run = engine_->RunInitial(structure, initial_state);
  if (!run.ok()) return run.status();
  // Epoch 0 is now in flight: exchange rounds fold in the other shards'
  // contributions before the barrier commit. Appends that raced ahead stay
  // in the log for the first delta epoch, exactly like solo Bootstrap.
  inflight_ = true;
  inflight_watermark_ = 0;
  inflight_deltas_ = 0;
  inflight_drain_ns_ = 0;
  return Status::OK();
}

StatusOr<Pipeline::RoundResult> Pipeline::RefreshRound(
    bool first, const std::vector<DeltaEdge>& remote_in) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  TRACE_SPAN("epoch.round", "pipeline=%s first=%d remote_in=%zu",
             name_.c_str(), first ? 1 : 0, remote_in.size());
  RoundResult rr;
  if (first) {
    if (!bootstrapped_.load()) {
      return Status::FailedPrecondition("pipeline not bootstrapped");
    }
    if (dirty_.load()) {
      // A previous epoch (solo or coordinated) died after possibly
      // mutating the working state: roll back before replaying.
      I2MR_RETURN_IF_ERROR(RestoreCommitted());
      dirty_.store(false);
    }
    inflight_ = true;
    inflight_watermark_ = committed_watermark_.load();
    inflight_deltas_ = 0;
    inflight_drain_ns_ = 0;
    staged_.valid = false;
    staged_.store.reset();
  } else if (!inflight_) {
    return Status::FailedPrecondition("no coordinated epoch in flight");
  }

  // Only the first round drains: deltas appended while the barrier rounds
  // run belong to the next epoch (bounded epochs even under a firehose).
  std::vector<DeltaKV> deltas;
  if (first) {
    std::vector<SeqDelta> drained =
        log_->ReadRange(inflight_watermark_, UINT64_MAX);
    if (!drained.empty()) {
      inflight_drain_ns_ = NowNanos();
      deltas.reserve(drained.size());
      for (auto& rec : drained) deltas.push_back(std::move(rec.delta));
      inflight_watermark_ = drained.back().seq;
      rr.deltas_drained = drained.size();
    }
  }

  size_t remote_changed = 0;
  if (!remote_in.empty()) {
    dirty_.store(true);  // the inbox files diverge from the snapshot
    auto applied = engine_->ApplyRemoteEdges(remote_in);
    if (!applied.ok()) return applied.status();
    remote_changed = *applied;
  }

  if (!deltas.empty() || remote_changed > 0 ||
      engine_->HasPendingRemoteKeys()) {
    dirty_.store(true);  // the working state is about to diverge
    auto run = engine_->RunIncremental(deltas);
    if (!run.ok()) return run.status();
    rr.refreshed = true;
    rr.iterations = run->iterations.size();
    for (const auto& it : run->iterations) rr.total_diff += it.total_diff;
    inflight_deltas_ += deltas.size();
  }
  rr.exports = engine_->TakeBoundaryExports();
  return rr;
}

Status Pipeline::StageEpoch(uint64_t epoch, double* commit_ms) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (!inflight_) {
    return Status::FailedPrecondition("no coordinated epoch in flight");
  }
  if (bootstrapped_.load() && epoch <= committed_epoch_.load()) {
    return Status::InvalidArgument("staged epoch must exceed the committed");
  }
  return StageEpochLocked(epoch, inflight_watermark_, inflight_drain_ns_,
                          commit_ms);
}

Status Pipeline::FinalizeStagedEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return FinalizeStagedLocked();
}

Status Pipeline::CleanupCommitted() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return CleanupCommittedLocked();
}

void Pipeline::AbortCoordinated() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (inflight_ || staged_.valid) dirty_.store(true);
  inflight_ = false;
  staged_.valid = false;
  staged_.store.reset();
}

StatusOr<std::string> Pipeline::Lookup(const std::string& key) const {
  std::shared_ptr<const ResultStore> snap;
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    snap = serving_;
  }
  if (snap == nullptr) {
    return Status::FailedPrecondition("pipeline not bootstrapped");
  }
  const std::string* v = snap->Get(key);
  if (v == nullptr) return Status::NotFound("no result for key " + key);
  return *v;
}

EpochPin Pipeline::PinServing() const {
  auto state = std::make_shared<EpochPin::State>();
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    if (serving_ == nullptr) return EpochPin();  // not bootstrapped
    state->epoch = committed_epoch_.load();
    state->watermark = committed_watermark_.load();
    state->store = serving_;
    // Register the pin before serving_mu_ drops: a commit that lands right
    // after us already sees the refcount when its GC runs.
    std::lock_guard<std::mutex> pin_lock(pin_mu_);
    ++pins_[state->epoch];
  }
  // Arm the release hook only once the pin is registered.
  state->unpin = [this](uint64_t epoch) { Unpin(epoch); };
  state->dir = JoinPath(Dir(), EpochDirName(state->epoch));
  return EpochPin(std::move(state));
}

void Pipeline::Unpin(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(pin_mu_);
  auto it = pins_.find(epoch);
  if (it == pins_.end()) return;
  if (--it->second <= 0) pins_.erase(it);
  // The epoch dir (if already superseded) stays on disk until the next
  // commit's GC — deferred cleanup keeps Unpin wait-free on the read path.
}

bool Pipeline::IsPinned(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(pin_mu_);
  return pins_.count(epoch) > 0;
}

std::vector<KV> Pipeline::ServingSnapshot() const {
  std::shared_ptr<const ResultStore> snap;
  {
    std::lock_guard<std::mutex> lock(serving_mu_);
    snap = serving_;
  }
  return snap == nullptr ? std::vector<KV>{} : snap->Snapshot();
}

}  // namespace i2mr
