#include "pipeline/delta_log.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/codec.h"
#include "common/hash.h"
#include "common/logging.h"
#include "io/compress.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

constexpr uint32_t kLogMagic = 0x49444c47;  // "IDLG"
constexpr size_t kFrameHeader = 8;          // magic + payload_len
constexpr size_t kFrameOverhead = kFrameHeader + 4;  // + crc
constexpr size_t kPayloadOverhead = 8 + 1 + 4 + 4;   // seq + op + 2 lengths
constexpr const char* kPurgeFile = "PURGE";
constexpr const char* kArchiveDir = "archive";
constexpr const char* kLegacyLog = "log.dat";

// Parses one frame starting at data[pos]. Returns OK and advances *pos past
// the frame, NotFound at a clean end (pos == size), Corruption otherwise.
Status ParseFrame(std::string_view data, size_t* pos, SeqDelta* out) {
  if (*pos == data.size()) return Status::NotFound("end of log");
  if (data.size() - *pos < kFrameOverhead) {
    return Status::Corruption("torn frame header");
  }
  Decoder head(data.data() + *pos, kFrameHeader);
  uint32_t magic = 0, payload_len = 0;
  head.GetFixed32(&magic);
  head.GetFixed32(&payload_len);
  if (magic != kLogMagic) return Status::Corruption("bad log magic");
  if (payload_len > kMaxRecordFieldLen ||
      data.size() - *pos - kFrameOverhead < payload_len) {
    return Status::Corruption("torn frame payload");
  }
  std::string_view payload(data.data() + *pos + kFrameHeader, payload_len);
  uint32_t crc =
      DecodeFixed32(data.data() + *pos + kFrameHeader + payload_len);
  if (crc != Crc32(payload)) return Status::Corruption("log crc mismatch");

  Decoder body(payload);
  uint8_t op = 0;
  if (!body.GetFixed64(&out->seq) || !body.GetByte(&op) ||
      !body.GetLengthPrefixed(&out->delta.key) ||
      !body.GetLengthPrefixed(&out->delta.value) || !body.done()) {
    return Status::Corruption("bad log payload");
  }
  if (op != static_cast<uint8_t>(DeltaOp::kInsert) &&
      op != static_cast<uint8_t>(DeltaOp::kDelete)) {
    return Status::Corruption("bad log op byte");
  }
  out->delta.op = static_cast<DeltaOp>(op);
  *pos += kFrameOverhead + payload_len;
  return Status::OK();
}

// PURGE: [u64 watermark][u32 crc32-of-first-8-bytes].
Status ReadPurgeMark(const std::string& path, uint64_t* watermark) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  if (data->size() != 12 ||
      DecodeFixed32(data->data() + 8) !=
          Crc32(std::string_view(data->data(), 8))) {
    return Status::Corruption("bad purge mark " + path);
  }
  *watermark = DecodeFixed64(data->data());
  return Status::OK();
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool IsCompressedSegmentPath(const std::string& path) {
  std::string base = Basename(path);
  return base.size() == 28 && base.rfind("seg-", 0) == 0 &&
         base.compare(base.size() - 4, 4, ".lzd") == 0;
}

bool IsSegmentPath(const std::string& path) {
  std::string base = Basename(path);
  return (base.size() == 28 && base.rfind("seg-", 0) == 0 &&
          base.compare(base.size() - 4, 4, ".dat") == 0) ||
         IsCompressedSegmentPath(path);
}

}  // namespace

bool IsDeltaLogSegmentFile(const std::string& path) {
  return IsSegmentPath(path);
}

bool IsCompressedDeltaLogSegmentFile(const std::string& path) {
  return IsCompressedSegmentPath(path);
}

uint64_t DeltaLogSegmentFirstSeq(const std::string& path) {
  if (!IsSegmentPath(path)) return 0;
  std::string base = Basename(path);
  uint64_t seq = 0;
  for (size_t i = 4; i < 24; ++i) {
    if (base[i] < '0' || base[i] > '9') return 0;
    seq = seq * 10 + (base[i] - '0');
  }
  return seq;
}

Status WriteDeltaLogPurgeMark(const std::string& dir, uint64_t watermark,
                              bool sync) {
  std::string payload;
  PutFixed64(&payload, watermark);
  std::string data = payload;
  PutFixed32(&data, Crc32(payload));
  std::string path = JoinPath(dir, kPurgeFile);
  std::string tmp = path + ".tmp";
  I2MR_RETURN_IF_ERROR(WriteStringToFile(tmp, data, sync));
  I2MR_RETURN_IF_ERROR(RenameFile(tmp, path));
  if (sync) I2MR_RETURN_IF_ERROR(SyncDir(dir));
  return Status::OK();
}

void EncodeLogRecord(uint64_t seq, const DeltaKV& delta, std::string* out) {
  std::string payload;
  PutFixed64(&payload, seq);
  payload.push_back(DeltaOpChar(delta.op));
  PutLengthPrefixed(&payload, delta.key);
  PutLengthPrefixed(&payload, delta.value);
  PutFixed32(out, kLogMagic);
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  PutFixed32(out, Crc32(payload));
}

std::string DeltaLogSegmentName(uint64_t first_seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%020" PRIu64 ".dat", first_seq);
  return buf;
}

StatusOr<std::unique_ptr<DeltaLog>> DeltaLog::Open(const std::string& dir,
                                                   DeltaLogOptions options) {
  I2MR_RETURN_IF_ERROR(CreateDirs(dir));
  std::unique_ptr<DeltaLog> log(new DeltaLog(dir, std::move(options)));
  I2MR_RETURN_IF_ERROR(log->Recover());
  return log;
}

DeltaLog::~DeltaLog() { (void)Close(); }

Status DeltaLog::MigrateLegacyLog() {
  // Pre-segmentation layout: one rewrite-on-purge log.dat. Rename it into a
  // segment named after its first sequence number; the normal scan then
  // treats it like any other (last) segment, torn tail included.
  std::string legacy = JoinPath(dir_, kLegacyLog);
  if (!FileExists(legacy)) return Status::OK();
  auto data = ReadFileToString(legacy);
  if (!data.ok()) return data.status();
  if (data->empty()) return RemoveAll(legacy);
  size_t pos = 0;
  SeqDelta first;
  uint64_t first_seq = 1;
  if (ParseFrame(*data, &pos, &first).ok()) first_seq = first.seq;
  return RenameFile(legacy, JoinPath(dir_, DeltaLogSegmentName(first_seq)));
}

Status DeltaLog::ScanSegment(const std::string& path, bool is_last,
                             uint64_t prev_max, uint64_t* last_seq,
                             uint64_t* nrecords) {
  // Three read paths for one parse loop: compressed archives are inflated
  // into a buffer, large raw segments are memory-mapped (the follower
  // catch-up / big-backlog recovery case), small ones go through the
  // existing buffered read. Only a raw last segment may be truncated.
  const bool compressed = IsCompressedSegmentPath(path);
  std::string owned;
  std::unique_ptr<MmapFile> mapped;
  std::string_view data;
  if (compressed) {
    auto raw = ReadFileToString(path);
    if (!raw.ok()) return raw.status();
    Status inflated = LzDecompress(*raw, &owned);
    if (!inflated.ok()) {
      return Status::Corruption("compressed segment " + path + ": " +
                                inflated.message());
    }
    data = owned;
  } else {
    auto size = FileSize(path);
    if (!size.ok()) return size.status();
    if (options_.mmap_scan_bytes > 0 && *size >= options_.mmap_scan_bytes) {
      auto m = MmapFile::Open(path);
      if (!m.ok()) return m.status();
      mapped = std::move(m.value());
      data = mapped->data();
    } else {
      auto raw = ReadFileToString(path);
      if (!raw.ok()) return raw.status();
      owned = std::move(raw.value());
      data = owned;
    }
  }
  size_t pos = 0;
  *last_seq = 0;
  *nrecords = 0;
  for (;;) {
    SeqDelta rec;
    Status st = ParseFrame(data, &pos, &rec);
    if (st.IsNotFound()) break;
    if (st.IsCorruption()) {
      if (!is_last || compressed) {
        // Sealed segments are immutable after rotation; mid-log damage
        // cannot be a torn append and silently dropping it would lose
        // acknowledged records that later segments build on.
        return Status::Corruption("sealed segment " + path + ": " +
                                  st.message());
      }
      // Torn tail (crash mid-append) or garbled bytes on the active
      // segment: keep the valid prefix, truncate the rest so the next
      // append starts clean.
      recovery_.discarded_bytes += data.size() - pos;
      LOG_WARN << "delta log " << path << ": discarding "
               << data.size() - pos << " tail bytes (" << st.message()
               << ")";
      mapped.reset();  // release the mapping before shrinking the file
      data = std::string_view();
      if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
        return Status::IOError("truncate " + path);
      }
      break;
    }
    I2MR_RETURN_IF_ERROR(st);
    // Sequence numbers must be strictly increasing across the whole log; a
    // regression means the files were tampered with or mis-assembled.
    if (rec.seq <= std::max(prev_max, *last_seq)) {
      return Status::Corruption("log sequence regression in " + path);
    }
    *last_seq = rec.seq;
    ++*nrecords;
    // Records at or below the durable purge mark were consumed by a
    // committed epoch; they stay on disk until their segment retires but
    // never re-enter the index.
    if (rec.seq > purge_watermark_) records_.push_back(std::move(rec));
  }
  recovery_.valid_bytes += pos;
  return Status::OK();
}

Status DeltaLog::Recover() {
  // Orphans from crashed maintenance: the legacy purge rewrite temp and a
  // half-written PURGE mark are never authoritative.
  if (FileExists(JoinPath(dir_, std::string(kLegacyLog) + ".purge"))) {
    I2MR_RETURN_IF_ERROR(
        RemoveAll(JoinPath(dir_, std::string(kLegacyLog) + ".purge")));
  }
  if (FileExists(JoinPath(dir_, std::string(kPurgeFile) + ".tmp"))) {
    I2MR_RETURN_IF_ERROR(
        RemoveAll(JoinPath(dir_, std::string(kPurgeFile) + ".tmp")));
  }
  if (FileExists(JoinPath(dir_, kPurgeFile))) {
    I2MR_RETURN_IF_ERROR(
        ReadPurgeMark(JoinPath(dir_, kPurgeFile), &purge_watermark_));
  }
  I2MR_RETURN_IF_ERROR(MigrateLegacyLog());

  auto files = ListFiles(dir_);
  if (!files.ok()) return files.status();
  std::vector<std::string> segs;
  for (const auto& f : *files) {
    if (IsSegmentPath(f)) segs.push_back(f);  // ListFiles returns sorted
  }

  uint64_t max_seq = 0;
  std::vector<std::string> retire;  // fully consumed: finish the purge
  for (size_t i = 0; i < segs.size(); ++i) {
    uint64_t seg_last = 0, seg_records = 0;
    I2MR_RETURN_IF_ERROR(
        ScanSegment(segs[i], /*is_last=*/i + 1 == segs.size(), max_seq,
                    &seg_last, &seg_records));
    ++recovery_.segments;
    max_seq = std::max(max_seq, seg_last);
    bool consumed = seg_records > 0 && seg_last <= purge_watermark_;
    bool empty_sealed = seg_records == 0 && i + 1 < segs.size();
    // Only a raw file can take appends: a compressed segment at the tail
    // (a follower's shipped archive copy) stays sealed and a fresh active
    // segment is opened past it.
    bool can_be_active =
        i + 1 == segs.size() && !IsCompressedSegmentPath(segs[i]);
    if (consumed || empty_sealed) {
      // A crash between the PURGE mark landing and the unlink leaves the
      // consumed segment behind; retire it now, completing the purge.
      retire.push_back(segs[i]);
    } else if (can_be_active) {
      active_path_ = segs[i];
      active_last_seq_ = seg_last;
      active_records_ = seg_records;
    } else {
      sealed_.push_back(SegmentInfo{segs[i], seg_last, seg_records});
    }
  }
  recovery_.records = records_.size();
  next_seq_ = std::max(max_seq, purge_watermark_) + 1;

  for (const auto& path : retire) {
    I2MR_RETURN_IF_ERROR(RetireSegmentFile(path));
  }

  if (active_path_.empty()) {
    active_path_ = JoinPath(dir_, DeltaLogSegmentName(next_seq_));
    active_last_seq_ = 0;
    active_records_ = 0;
  }
  auto f = WritableFile::Create(active_path_, /*append=*/true);
  if (!f.ok()) return f.status();
  file_ = std::move(f.value());
  if (options_.durability == DurabilityMode::kPowerFailure) {
    // The active segment's directory entry (and any retirements above)
    // must survive power loss before appends are acknowledged against it.
    I2MR_RETURN_IF_ERROR(SyncDir(dir_));
  }
  return Status::OK();
}

void DeltaLog::EnsureNextSeqAfter(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_seq_ <= seq) next_seq_ = seq + 1;
}

bool DeltaLog::SimulateCrashLocked(const char* stage) {
  bool crash = options_.crash_hook && options_.crash_hook(stage);
  if (!crash && fault::FaultInjector::Armed()) {
    crash = fault::FaultInjector::Instance()->AtCrashPoint(
        std::string("delta_log/") + stage);
  }
  if (!crash) return false;
  LOG_WARN << "delta log " << dir_ << ": simulated crash at stage '" << stage
           << "'";
  if (file_ != nullptr) {
    (void)file_->Close();  // "process died": the file state is irrelevant
    file_.reset();         // refuse further appends until reopen
  }
  return true;
}

Status DeltaLog::RotateLocked() {
  if (options_.durability == DurabilityMode::kPowerFailure) {
    I2MR_RETURN_IF_ERROR(file_->Sync());
  }
  Status sealed = file_->Close();
  file_.reset();
  if (!sealed.ok()) return sealed;
  sealed_.push_back(
      SegmentInfo{active_path_, active_last_seq_, active_records_});
  if (seal_listener_) {
    // Under mu_ by contract (see SetSealListener): the shipper's handler
    // only flags work and wakes its thread.
    seal_listener_(active_path_, active_last_seq_);
  }

  if (SimulateCrashLocked("rotate")) {
    return Status::Aborted("simulated crash between seal and new segment");
  }

  std::string new_path = JoinPath(dir_, DeltaLogSegmentName(next_seq_));
  auto f = WritableFile::Create(new_path);
  Status created = f.ok() ? Status::OK() : f.status();
  if (created.ok() && options_.durability == DurabilityMode::kPowerFailure) {
    created = SyncDir(dir_);
  }
  if (!created.ok()) {
    // Un-seal: the new segment can't exist (e.g. ENOSPC), so reopen the
    // old active segment for append instead of leaving the log dead. The
    // seal notification already sent is a spurious wakeup, nothing more —
    // the shipper re-derives the sealed list under mu_.
    sealed_.pop_back();
    if (Status st = RemoveAll(new_path); !st.ok()) {
      LOG_WARN << "delta log " << dir_
               << ": stray rotation segment left behind: " << st.ToString();
    }
    auto reopened = WritableFile::Create(active_path_, /*append=*/true);
    if (reopened.ok()) {
      file_ = std::move(reopened.value());
    } else {
      LOG_WARN << "delta log " << dir_ << ": could not reopen "
               << active_path_ << " after failed rotation; log closed: "
               << reopened.status().ToString();
    }
    return created;
  }
  active_path_ = std::move(new_path);
  active_last_seq_ = 0;
  active_records_ = 0;
  file_ = std::move(f.value());
  return Status::OK();
}

Status DeltaLog::RollbackLocked(uint64_t file_offset, size_t record_count,
                                uint64_t next_seq, uint64_t active_last_seq,
                                uint64_t active_records) {
  // Undo a partially applied append group: truncate the file back to the
  // pre-group offset and drop the in-memory records, so a failed call
  // leaves nothing behind that a later drain could apply (the caller was
  // told the whole group failed and may retry it).
  records_.resize(record_count);
  next_seq_ = next_seq;
  active_last_seq_ = active_last_seq;
  active_records_ = active_records;
  file_.reset();  // close before truncating under the handle
  if (::truncate(active_path_.c_str(), static_cast<off_t>(file_offset)) != 0) {
    return Status::IOError("rollback truncate " + active_path_);
  }
  auto f = WritableFile::Create(active_path_, /*append=*/true);
  if (!f.ok()) return f.status();
  file_ = std::move(f.value());
  return Status::OK();
}

StatusOr<uint64_t> DeltaLog::Append(const DeltaKV& delta) {
  return AppendBatch({delta});
}

StatusOr<uint64_t> DeltaLog::AppendBatch(const std::vector<DeltaKV>& deltas) {
  // All-or-nothing: validate every record before queueing any, so a bad
  // record mid-batch can't leave a durable partial batch behind a rejected
  // return status (and can't fail an innocent group-mate's batch). The
  // bound mirrors ParseFrame's, so nothing we acknowledge is later
  // rejected as corrupt by the recovery scan.
  for (const auto& d : deltas) {
    if (d.key.size() + d.value.size() + kPayloadOverhead > kMaxRecordFieldLen) {
      return Status::InvalidArgument("delta record exceeds frame length limit");
    }
  }

  Writer w;
  w.deltas = &deltas;
  std::unique_lock<std::mutex> lock(mu_);
  writers_.push_back(&w);
  // Park until a leader completed our group, or we reached the front and
  // lead one ourselves.
  while (!w.done && &w != writers_.front()) cv_.wait(lock);
  if (!w.done) CommitGroupLocked(lock);
  if (!w.status.ok()) return w.status;
  return w.last_seq;
}

void DeltaLog::CommitGroupLocked(std::unique_lock<std::mutex>& lock) {
  // Absorb every writer queued right now into one group. Writers arriving
  // while our I/O runs enqueue behind the group and form the next one.
  std::vector<Writer*> group(writers_.begin(), writers_.end());

  Status st;
  std::vector<SeqDelta> staged;  // records to publish on success
  const uint64_t start_offset = file_ == nullptr ? 0 : file_->offset();
  const uint64_t start_next_seq = next_seq_;
  if (file_ == nullptr) {
    st = Status::FailedPrecondition("log closed");
  } else {
    // Stage frames + sequence numbers under the mutex (cheap, in-memory)...
    std::string frames;
    for (Writer* writer : group) {
      for (const auto& d : *writer->deltas) {
        writer->last_seq = next_seq_++;
        EncodeLogRecord(writer->last_seq, d, &frames);
        staged.push_back(SeqDelta{writer->last_seq, d});
      }
      if (writer->deltas->empty()) writer->last_seq = next_seq_ - 1;
    }
    // ...then write + flush/fsync them with the mutex released: ONE
    // device round-trip for the whole group. Only the leader touches
    // file_ here — followers are parked, new writers queue behind the
    // group, and PurgeThrough/Close wait out io_in_progress_.
    if (!staged.empty()) {
      WritableFile* file = file_.get();
      io_in_progress_ = true;
      lock.unlock();
      st = file->Append(frames);
      if (st.ok()) {
        st = options_.durability == DurabilityMode::kPowerFailure
                 ? file->Sync()
                 : file->Flush();
      }
      lock.lock();
      io_in_progress_ = false;
      ++sync_calls_;
    }
  }

  if (!st.ok() && start_next_seq != next_seq_) {
    // Roll the whole group back (truncate + restore the seq counter) so
    // every member's error return is truthful: nothing it was told failed
    // can later surface in a drain. records_ was never touched — staged
    // records publish only on success — so readers never saw them.
    Status rb = RollbackLocked(start_offset, records_.size(), start_next_seq,
                               active_last_seq_, active_records_);
    if (!rb.ok()) {
      LOG_WARN << "delta log " << active_path_
               << ": rollback after failed append also failed ("
               << rb.ToString() << "); log closed";
    }
  }
  if (st.ok() && !staged.empty()) {
    active_last_seq_ = staged.back().seq;
    active_records_ += staged.size();
    records_.insert(records_.end(), staged.begin(), staged.end());
    if (file_->offset() >= options_.segment_bytes) {
      Status rotated = RotateLocked();
      if (rotated.code() == Status::Code::kAborted) {
        // Simulated process death at the rotation boundary: nothing
        // observes these return values (the "process" is gone).
        st = rotated;
      } else if (!rotated.ok()) {
        // The group IS durable: reporting a rotation failure as an append
        // failure would invite a retry that double-applies it. Absorb the
        // error — a wedged rotation either left the old active segment
        // usable (retried on the next batch) or closed the log, surfacing
        // as FailedPrecondition on the next append.
        LOG_WARN << "delta log " << dir_ << ": rotation failed ("
                 << rotated.ToString() << "); batch already durable";
      }
    }
  }

  for (Writer* writer : group) {
    writer->status = st;
    writer->done = true;
  }
  writers_.erase(writers_.begin(), writers_.begin() + group.size());
  // Wake the whole group plus the next group's leader (and anyone waiting
  // on io_in_progress_).
  cv_.notify_all();
}

std::vector<SeqDelta> DeltaLog::ReadRange(uint64_t after, uint64_t upto) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto lo = std::upper_bound(
      records_.begin(), records_.end(), after,
      [](uint64_t s, const SeqDelta& r) { return s < r.seq; });
  auto hi = std::upper_bound(
      records_.begin(), records_.end(), upto,
      [](uint64_t s, const SeqDelta& r) { return s < r.seq; });
  return std::vector<SeqDelta>(lo, hi);
}

Status DeltaLog::WritePurgeMarkLocked() {
  return WriteDeltaLogPurgeMark(
      dir_, purge_watermark_,
      options_.durability == DurabilityMode::kPowerFailure);
}

Status DeltaLog::RetireSegmentFile(const std::string& path) {
  if (!options_.archive_purged) return RemoveAll(path);
  std::string archive = JoinPath(dir_, kArchiveDir);
  I2MR_RETURN_IF_ERROR(CreateDirs(archive));
  std::string base = Basename(path);
  if (!options_.compress_archive || IsCompressedSegmentPath(path)) {
    return RenameFile(path, JoinPath(archive, base));
  }
  // Compact + compress: keep only the segment's valid record prefix (a
  // sealed file can still carry slack past a mid-write crash that a later
  // truncation never touched) and store it LZ-compressed. The write is
  // tmp + rename so a crash can't leave a half-written archive a shipper
  // would try to read.
  auto raw = ReadFileToString(path);
  if (!raw.ok()) return raw.status();
  size_t valid_end = 0;
  for (;;) {
    SeqDelta rec;
    if (!ParseFrame(*raw, &valid_end, &rec).ok()) break;
  }
  std::string compressed;
  LzCompress(std::string_view(raw->data(), valid_end), &compressed);
  std::string dst =
      JoinPath(archive, base.substr(0, base.size() - 4) + ".lzd");
  std::string tmp = dst + ".tmp";
  I2MR_RETURN_IF_ERROR(WriteStringToFile(
      tmp, compressed,
      options_.durability == DurabilityMode::kPowerFailure));
  I2MR_RETURN_IF_ERROR(RenameFile(tmp, dst));
  return RemoveAll(path);
}

Status DeltaLog::PurgeThrough(uint64_t watermark) {
  // Everything O(live) or slower happens inside this block, but it is all
  // in-memory + an O(1) mark write; the per-segment file retirement below
  // runs outside the mutex so concurrent appends never stall on it.
  std::vector<std::string> consumed;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A group-commit leader may hold the active segment with mu_ released;
    // sealing it out from under the leader's write would tear the group.
    while (io_in_progress_) cv_.wait(lock);
    if (watermark <= purge_watermark_) return Status::OK();
    if (records_.empty() || records_.front().seq > watermark) {
      return Status::OK();
    }
    auto keep = std::upper_bound(
        records_.begin(), records_.end(), watermark,
        [](uint64_t s, const SeqDelta& r) { return s < r.seq; });
    records_.erase(records_.begin(), keep);

    // A fully consumed active segment would otherwise pin its bytes until
    // organic rotation; seal it now so it can retire with the rest.
    if (file_ != nullptr && active_records_ > 0 &&
        active_last_seq_ <= watermark) {
      I2MR_RETURN_IF_ERROR(RotateLocked());
    }
    size_t n = 0;
    while (n < sealed_.size() && sealed_[n].last_seq <= watermark) ++n;
    for (size_t i = 0; i < n; ++i) consumed.push_back(sealed_[i].path);
    sealed_.erase(sealed_.begin(), sealed_.begin() + n);

    // The mark must be durable before any file disappears: recovery uses
    // it both to drop consumed records still on disk and to finish an
    // interrupted retirement.
    purge_watermark_ = watermark;
    I2MR_RETURN_IF_ERROR(WritePurgeMarkLocked());

    if (SimulateCrashLocked("purge-marked")) {
      return Status::Aborted("simulated crash before segment retirement");
    }
  }

  for (const auto& path : consumed) {
    I2MR_RETURN_IF_ERROR(RetireSegmentFile(path));
  }
  return Status::OK();
}

uint64_t DeltaLog::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t DeltaLog::live_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

uint64_t DeltaLog::segment_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_.size() + 1;
}

uint64_t DeltaLog::purge_watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return purge_watermark_;
}

std::string DeltaLog::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_path_;
}

std::vector<std::string> DeltaLog::SealedSegmentPaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sealed_.size());
  for (const auto& seg : sealed_) out.push_back(seg.path);
  return out;
}

void DeltaLog::SetSealListener(
    std::function<void(const std::string& path, uint64_t last_seq)> listener) {
  // Taking mu_ here doubles as a drain: an in-flight rotation (which
  // invokes the listener under mu_) completes before the swap, so after
  // SetSealListener(nullptr) returns no further callback can run.
  std::lock_guard<std::mutex> lock(mu_);
  seal_listener_ = std::move(listener);
}

uint64_t DeltaLog::sync_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_calls_;
}

Status DeltaLog::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  while (io_in_progress_) cv_.wait(lock);
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Close();
  file_.reset();
  return st;
}

}  // namespace i2mr
