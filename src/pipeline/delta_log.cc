#include "pipeline/delta_log.h"

#include <unistd.h>

#include <algorithm>

#include "common/codec.h"
#include "common/hash.h"
#include "common/logging.h"
#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

constexpr uint32_t kLogMagic = 0x49444c47;  // "IDLG"
constexpr size_t kFrameHeader = 8;          // magic + payload_len
constexpr size_t kFrameOverhead = kFrameHeader + 4;  // + crc
constexpr size_t kPayloadOverhead = 8 + 1 + 4 + 4;   // seq + op + 2 lengths

std::string LogFilePath(const std::string& dir) {
  return JoinPath(dir, "log.dat");
}

// Parses one frame starting at data[pos]. Returns OK and advances *pos past
// the frame, NotFound at a clean end (pos == size), Corruption otherwise.
Status ParseFrame(std::string_view data, size_t* pos, SeqDelta* out) {
  if (*pos == data.size()) return Status::NotFound("end of log");
  if (data.size() - *pos < kFrameOverhead) {
    return Status::Corruption("torn frame header");
  }
  Decoder head(data.data() + *pos, kFrameHeader);
  uint32_t magic = 0, payload_len = 0;
  head.GetFixed32(&magic);
  head.GetFixed32(&payload_len);
  if (magic != kLogMagic) return Status::Corruption("bad log magic");
  if (payload_len > kMaxRecordFieldLen ||
      data.size() - *pos - kFrameOverhead < payload_len) {
    return Status::Corruption("torn frame payload");
  }
  std::string_view payload(data.data() + *pos + kFrameHeader, payload_len);
  uint32_t crc =
      DecodeFixed32(data.data() + *pos + kFrameHeader + payload_len);
  if (crc != Crc32(payload)) return Status::Corruption("log crc mismatch");

  Decoder body(payload);
  uint8_t op = 0;
  if (!body.GetFixed64(&out->seq) || !body.GetByte(&op) ||
      !body.GetLengthPrefixed(&out->delta.key) ||
      !body.GetLengthPrefixed(&out->delta.value) || !body.done()) {
    return Status::Corruption("bad log payload");
  }
  if (op != static_cast<uint8_t>(DeltaOp::kInsert) &&
      op != static_cast<uint8_t>(DeltaOp::kDelete)) {
    return Status::Corruption("bad log op byte");
  }
  out->delta.op = static_cast<DeltaOp>(op);
  *pos += kFrameOverhead + payload_len;
  return Status::OK();
}

}  // namespace

void EncodeLogRecord(uint64_t seq, const DeltaKV& delta, std::string* out) {
  std::string payload;
  PutFixed64(&payload, seq);
  payload.push_back(DeltaOpChar(delta.op));
  PutLengthPrefixed(&payload, delta.key);
  PutLengthPrefixed(&payload, delta.value);
  PutFixed32(out, kLogMagic);
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  PutFixed32(out, Crc32(payload));
}

StatusOr<std::unique_ptr<DeltaLog>> DeltaLog::Open(const std::string& dir) {
  I2MR_RETURN_IF_ERROR(CreateDirs(dir));
  std::unique_ptr<DeltaLog> log(new DeltaLog(LogFilePath(dir)));
  I2MR_RETURN_IF_ERROR(log->Recover());
  return log;
}

DeltaLog::~DeltaLog() { Close().ok(); }

Status DeltaLog::Recover() {
  // A crash mid-purge can orphan the rewrite temp file; it is never the
  // authoritative log (the rename either happened or it didn't), so drop it.
  if (FileExists(path_ + ".purge")) {
    I2MR_RETURN_IF_ERROR(RemoveAll(path_ + ".purge"));
  }
  if (FileExists(path_)) {
    auto data = ReadFileToString(path_);
    if (!data.ok()) return data.status();
    size_t pos = 0;
    for (;;) {
      SeqDelta rec;
      Status st = ParseFrame(*data, &pos, &rec);
      if (st.IsNotFound()) break;
      if (st.IsCorruption()) {
        // Torn tail (crash mid-append) or garbled bytes: keep the valid
        // prefix, truncate the rest so the next append starts clean.
        recovery_.discarded_bytes = data->size() - pos;
        LOG_WARN << "delta log " << path_ << ": discarding "
                 << recovery_.discarded_bytes << " tail bytes ("
                 << st.message() << ")";
        if (::truncate(path_.c_str(), static_cast<off_t>(pos)) != 0) {
          return Status::IOError("truncate " + path_);
        }
        break;
      }
      I2MR_RETURN_IF_ERROR(st);
      // Sequence numbers must be strictly increasing; a regression means
      // the file was tampered with or mis-assembled.
      if (!records_.empty() && rec.seq <= records_.back().seq) {
        return Status::Corruption("log sequence regression");
      }
      records_.push_back(std::move(rec));
      recovery_.valid_bytes = pos;
    }
    recovery_.records = records_.size();
    if (!records_.empty()) next_seq_ = records_.back().seq + 1;
  }
  auto f = WritableFile::Create(path_, /*append=*/true);
  if (!f.ok()) return f.status();
  file_ = std::move(f.value());
  return Status::OK();
}

void DeltaLog::EnsureNextSeqAfter(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_seq_ <= seq) next_seq_ = seq + 1;
}

Status DeltaLog::AppendLocked(const DeltaKV& delta, uint64_t* seq) {
  if (file_ == nullptr) return Status::FailedPrecondition("log closed");
  *seq = next_seq_++;
  std::string frame;
  EncodeLogRecord(*seq, delta, &frame);
  I2MR_RETURN_IF_ERROR(file_->Append(frame));
  records_.push_back(SeqDelta{*seq, delta});
  return Status::OK();
}

Status DeltaLog::RollbackLocked(uint64_t file_offset, size_t record_count,
                                uint64_t next_seq) {
  // Undo a partially applied append group: truncate the file back to the
  // pre-group offset and drop the in-memory records, so a failed call
  // leaves nothing behind that a later drain could apply (the caller was
  // told the whole group failed and may retry it).
  records_.resize(record_count);
  next_seq_ = next_seq;
  file_.reset();  // close before truncating under the handle
  if (::truncate(path_.c_str(), static_cast<off_t>(file_offset)) != 0) {
    return Status::IOError("rollback truncate " + path_);
  }
  auto f = WritableFile::Create(path_, /*append=*/true);
  if (!f.ok()) return f.status();
  file_ = std::move(f.value());
  return Status::OK();
}

StatusOr<uint64_t> DeltaLog::Append(const DeltaKV& delta) {
  return AppendBatch({delta});
}

StatusOr<uint64_t> DeltaLog::AppendBatch(const std::vector<DeltaKV>& deltas) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("log closed");
  // All-or-nothing: validate every record before appending any, so a bad
  // record mid-batch can't leave a durable partial batch behind a rejected
  // return status. The bound mirrors ParseFrame's, so nothing we
  // acknowledge is later rejected as corrupt by the recovery scan.
  for (const auto& d : deltas) {
    if (d.key.size() + d.value.size() + kPayloadOverhead > kMaxRecordFieldLen) {
      return Status::InvalidArgument("delta record exceeds frame length limit");
    }
  }
  const uint64_t start_offset = file_->offset();
  const size_t start_records = records_.size();
  const uint64_t start_next_seq = next_seq_;
  uint64_t seq = next_seq_ - 1;
  Status st;
  for (const auto& d : deltas) {
    st = AppendLocked(d, &seq);
    if (!st.ok()) break;
  }
  if (st.ok() && !deltas.empty()) st = file_->Flush();
  if (!st.ok()) {
    // The same holds for I/O failures mid-group: roll the partial group
    // back so the error return is truthful.
    Status rb = RollbackLocked(start_offset, start_records, start_next_seq);
    if (!rb.ok()) {
      LOG_WARN << "delta log " << path_ << ": rollback after failed append "
               << "also failed (" << rb.ToString() << "); log closed";
    }
    return st;
  }
  return seq;
}

std::vector<SeqDelta> DeltaLog::ReadRange(uint64_t after, uint64_t upto) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto lo = std::upper_bound(
      records_.begin(), records_.end(), after,
      [](uint64_t s, const SeqDelta& r) { return s < r.seq; });
  auto hi = std::upper_bound(
      records_.begin(), records_.end(), upto,
      [](uint64_t s, const SeqDelta& r) { return s < r.seq; });
  return std::vector<SeqDelta>(lo, hi);
}

Status DeltaLog::PurgeThrough(uint64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.empty() || records_.front().seq > watermark) {
    return Status::OK();
  }
  auto keep = std::upper_bound(
      records_.begin(), records_.end(), watermark,
      [](uint64_t s, const SeqDelta& r) { return s < r.seq; });
  std::vector<SeqDelta> live(keep, records_.end());

  // Rewrite the live suffix to a temp file and swap it in, so a crash
  // mid-purge leaves either the old or the new log, never a mix.
  std::string tmp = path_ + ".purge";
  {
    auto w = WritableFile::Create(tmp);
    if (!w.ok()) return w.status();
    Status written = [&]() -> Status {
      std::string frame;
      for (const auto& rec : live) {
        frame.clear();
        EncodeLogRecord(rec.seq, rec.delta, &frame);
        I2MR_RETURN_IF_ERROR((*w)->Append(frame));
      }
      return (*w)->Close();
    }();
    if (!written.ok()) {
      RemoveAll(tmp).ok();  // don't leak the half-written temp file
      return written;
    }
  }
  if (file_ != nullptr) {
    Status closed = file_->Close();
    // Always drop the handle: Close() clears its FILE* even on failure, so
    // keeping file_ around would let the next append fwrite into nullptr.
    file_.reset();
    if (!closed.ok()) {
      RemoveAll(tmp).ok();
      return closed;
    }
  }
  Status renamed = RenameFile(tmp, path_);
  if (!renamed.ok()) {
    // Keep the log usable: reopen the (unchanged) old file so a transient
    // rename failure doesn't permanently brick ingestion.
    RemoveAll(tmp).ok();
    auto reopen = WritableFile::Create(path_, /*append=*/true);
    if (reopen.ok()) file_ = std::move(reopen.value());
    return renamed;
  }
  auto f = WritableFile::Create(path_, /*append=*/true);
  if (!f.ok()) return f.status();
  file_ = std::move(f.value());
  records_ = std::move(live);
  return Status::OK();
}

uint64_t DeltaLog::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t DeltaLog::live_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

Status DeltaLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Close();
  file_.reset();
  return st;
}

}  // namespace i2mr
