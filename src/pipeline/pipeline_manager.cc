#include "pipeline/pipeline_manager.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/timer.h"

namespace i2mr {

// ---------------------------------------------------------------------------
// ServingView
// ---------------------------------------------------------------------------

StatusOr<std::string> ServingView::Lookup(const std::string& pipeline,
                                          const std::string& key) const {
  Pipeline* p = manager_->Get(pipeline);
  if (p == nullptr) return Status::NotFound("unknown pipeline " + pipeline);
  manager_->reads_served_.Increment();
  return p->Lookup(key);
}

StatusOr<std::vector<KV>> ServingView::Snapshot(
    const std::string& pipeline) const {
  Pipeline* p = manager_->Get(pipeline);
  if (p == nullptr) return Status::NotFound("unknown pipeline " + pipeline);
  manager_->reads_served_.Increment();
  return p->ServingSnapshot();
}

StatusOr<uint64_t> ServingView::CommittedEpoch(
    const std::string& pipeline) const {
  Pipeline* p = manager_->Get(pipeline);
  if (p == nullptr) return Status::NotFound("unknown pipeline " + pipeline);
  return p->committed_epoch();
}

// ---------------------------------------------------------------------------
// PipelineManager
// ---------------------------------------------------------------------------

PipelineManager::PipelineManager(LocalCluster* cluster,
                                 PipelineManagerOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      sched_pool_(options_.scheduler_threads > 0 ? options_.scheduler_threads
                                                 : 1,
                  "epoch-sched"),
      view_(this) {
  if (options_.metrics == nullptr) options_.metrics = MetricsRegistry::Default();
  const std::string& prefix = options_.metrics_prefix;
  epochs_committed_.published = options_.metrics->Get(prefix + ".epochs_committed");
  deltas_applied_.published = options_.metrics->Get(prefix + ".deltas_applied");
  epoch_failures_.published = options_.metrics->Get(prefix + ".epoch_failures");
  epochs_deferred_.published = options_.metrics->Get(prefix + ".epochs_deferred");
  reads_served_.published = options_.metrics->Get(prefix + ".reads_served");
  epoch_wall_hist_ = options_.metrics->GetHistogram(prefix + ".epoch_wall_ns");
}

PipelineManager::~PipelineManager() {
  Stop();
  sched_pool_.WaitIdle();
}

StatusOr<Pipeline*> PipelineManager::Register(const std::string& name,
                                              PipelineOptions options) {
  // register_mu_ serializes the whole name-check + Open + emplace: two
  // concurrent Registers with the same name must never both run
  // Pipeline::Open (it mutates the pipeline's directory). mu_ alone only
  // protects the map and is not held across the (slow) Open.
  std::lock_guard<std::mutex> register_lock(register_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.count(name) > 0) {
      return Status::AlreadyExists("pipeline " + name + " already registered");
    }
  }
  if (options.durability < options_.durability) {
    options.durability = options_.durability;  // manager-wide floor
  }
  auto pipeline = Pipeline::Open(cluster_, name, std::move(options));
  if (!pipeline.ok()) return pipeline.status();
  auto entry = std::make_unique<Entry>();
  entry->pipeline = std::move(pipeline.value());
  Pipeline* raw = entry->pipeline.get();
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(name, std::move(entry));
  return raw;
}

Pipeline* PipelineManager::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second->pipeline.get();
}

std::vector<std::string> PipelineManager::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, _] : entries_) names.push_back(name);
  return names;
}

StatusOr<uint64_t> PipelineManager::Append(const std::string& name,
                                           const DeltaKV& delta) {
  Pipeline* p = Get(name);
  if (p == nullptr) return Status::NotFound("unknown pipeline " + name);
  return p->Append(delta);
}

Status PipelineManager::AppendBatch(const std::string& name,
                                    const std::vector<DeltaKV>& deltas) {
  Pipeline* p = Get(name);
  if (p == nullptr) return Status::NotFound("unknown pipeline " + name);
  auto seq = p->AppendBatch(deltas);
  return seq.ok() ? Status::OK() : seq.status();
}

std::vector<PipelineManager::Entry*> PipelineManager::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry*> out;
  out.reserve(entries_.size());
  for (const auto& [_, entry] : entries_) out.push_back(entry.get());
  return out;
}

void PipelineManager::RunEpochTask(Entry* entry) {
  auto stats = entry->pipeline->RunEpoch();
  if (stats.ok()) {
    if (stats->deltas_applied > 0) {
      epochs_committed_.Increment();
      deltas_applied_.Add(stats->deltas_applied);
      epoch_wall_hist_->Record(
          static_cast<int64_t>(stats->wall_ms * 1e6));
      if (options_.slow_epoch_ms > 0 &&
          stats->wall_ms > options_.slow_epoch_ms) {
        LOG_WARN << "slow_epoch pipeline=" << entry->pipeline->name()
                 << " epoch=" << stats->epoch
                 << " wall_ms=" << stats->wall_ms
                 << " refresh_ms=" << stats->refresh_ms
                 << " commit_ms=" << stats->commit_ms
                 << " map_ms=" << stats->refresh_map_ms
                 << " shuffle_ms=" << stats->refresh_shuffle_ms
                 << " sort_ms=" << stats->refresh_sort_ms
                 << " reduce_ms=" << stats->refresh_reduce_ms
                 << " merge_ms=" << stats->refresh_merge_ms
                 << " deltas=" << stats->deltas_applied
                 << " iterations=" << stats->iterations
                 << " threshold_ms=" << options_.slow_epoch_ms;
      }
    }
    entry->consecutive_failures.store(0);
    entry->next_attempt_ns.store(0);
  } else {
    epoch_failures_.Increment();
    int failures = entry->consecutive_failures.fetch_add(1) + 1;
    // Exponential backoff, capped at 30s: 100ms, 200ms, 400ms, ...
    int64_t backoff_ms = std::min<int64_t>(30000, 100LL << std::min(failures - 1, 20));
    entry->next_attempt_ns.store(NowNanos() + backoff_ms * 1000000);
    LOG_WARN << "pipeline " << entry->pipeline->name() << " epoch failed ("
             << stats.status().ToString() << "); backing off " << backoff_ms
             << "ms";
    std::lock_guard<std::mutex> lock(entry->err_mu);
    entry->last_error = stats.status();
  }
  entry->running.store(false);
}

bool PipelineManager::SubmitEpoch(Entry* entry) {
  if (entry->pipeline->pending() == 0) return false;
  if (entry->running.exchange(true)) return false;  // epoch already in flight
  sched_pool_.Submit([this, entry] { RunEpochTask(entry); });
  return true;
}

int PipelineManager::ScheduleReady() {
  int scheduled = 0;
  int64_t now = NowNanos();
  for (Entry* entry : Entries()) {
    if (now < entry->next_attempt_ns.load()) continue;  // failure backoff
    // Pre-check before the gate: an epoch already in flight keeps
    // EpochReady() true for its whole duration, and charging the tenant's
    // quota once per poll round for a submission that cannot happen would
    // silently throttle it far below its configured rate.
    if (entry->running.load()) continue;
    // A degraded (read-only) pipeline pauses epoch scheduling: its log is
    // bouncing appends, so an epoch would either find nothing new or fail
    // against the same sick disk. The append-side probe write flips the
    // pipeline healthy again, and the next poll round resumes scheduling.
    if (entry->pipeline->degraded()) continue;
    if (!entry->pipeline->EpochReady()) continue;
    if (options_.epoch_gate && !options_.epoch_gate(*entry->pipeline)) {
      // Admission said "not now" (e.g. the owning tenant is over its epoch
      // quota): the backlog stays in the log and is re-evaluated next poll.
      epochs_deferred_.Increment();
      continue;
    }
    if (SubmitEpoch(entry)) ++scheduled;
  }
  return scheduled;
}

Status PipelineManager::DrainAll() {
  // Errors latched by earlier background (poller-scheduled) epochs belong
  // to those epochs, not to this drain — they are already counted in
  // stats().epoch_failures. Start from a clean slate so a fully successful
  // drain reports OK.
  for (Entry* entry : Entries()) {
    std::lock_guard<std::mutex> lock(entry->err_mu);
    entry->last_error = Status::OK();
  }
  for (;;) {
    bool any = false;
    for (Entry* entry : Entries()) {
      if (entry->pipeline->bootstrapped() && SubmitEpoch(entry)) any = true;
    }
    sched_pool_.WaitIdle();
    Status first_error;
    for (Entry* entry : Entries()) {
      std::lock_guard<std::mutex> lock(entry->err_mu);
      if (!entry->last_error.ok()) {
        if (first_error.ok()) first_error = entry->last_error;
        entry->last_error = Status::OK();  // clear every latched error
      }
    }
    if (!first_error.ok()) return first_error;
    if (any) continue;
    // Nothing was submitted this round, but an epoch submitted elsewhere
    // (the background poller) may have been in flight with deltas arriving
    // behind its drain point: only stop once nothing is actually pending.
    bool all_drained = true;
    for (Entry* entry : Entries()) {
      if (entry->pipeline->bootstrapped() && entry->pipeline->pending() > 0) {
        all_drained = false;
        break;
      }
    }
    if (all_drained) return Status::OK();
  }
}

void PipelineManager::Start() {
  if (polling_.exchange(true)) return;
  poller_ = std::thread([this] {
    while (polling_.load()) {
      ScheduleReady();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.poll_interval_ms));
    }
  });
}

void PipelineManager::Stop() {
  if (!polling_.exchange(false)) return;
  if (poller_.joinable()) poller_.join();
  sched_pool_.WaitIdle();
}

PipelineManager::Stats PipelineManager::stats() const {
  Stats s;
  s.epochs_committed = epochs_committed_.local.load();
  s.deltas_applied = deltas_applied_.local.load();
  s.epoch_failures = epoch_failures_.local.load();
  s.epochs_deferred = epochs_deferred_.local.load();
  s.reads_served = reads_served_.local.load();
  return s;
}

}  // namespace i2mr
