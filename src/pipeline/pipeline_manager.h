// PipelineManager: many pipelines over one shared LocalCluster.
//
// Ingestion (Append) is routed to each pipeline's durable DeltaLog;
// refreshes are scheduled on the manager's own ThreadPool so several
// pipelines can run epochs concurrently while the cluster's worker pool
// executes their map/reduce tasks. An epoch is scheduled when a pipeline's
// min-batch or max-lag trigger fires (pg_incremental-style sequence
// pipelines: poll, drain the new sequence range, refresh, commit).
//
// The ServingView answers point lookups from each pipeline's committed
// ResultStore snapshot — reads are served from the last committed epoch and
// never block on a refresh in flight.
#ifndef I2MR_PIPELINE_PIPELINE_MANAGER_H_
#define I2MR_PIPELINE_PIPELINE_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "mr/cluster.h"
#include "pipeline/pipeline.h"

namespace i2mr {

class PipelineManager;

/// Read-only query facade over every registered pipeline's committed
/// results. Cheap to copy around query-serving code; thread-safe.
class ServingView {
 public:
  explicit ServingView(const PipelineManager* manager) : manager_(manager) {}

  /// Point lookup in `pipeline`'s committed result.
  StatusOr<std::string> Lookup(const std::string& pipeline,
                               const std::string& key) const;

  /// Full committed result of `pipeline`, sorted by key.
  StatusOr<std::vector<KV>> Snapshot(const std::string& pipeline) const;

  /// Epoch the answers currently come from.
  StatusOr<uint64_t> CommittedEpoch(const std::string& pipeline) const;

 private:
  const PipelineManager* manager_;
};

struct PipelineManagerOptions {
  /// Epoch drivers: how many pipelines may refresh concurrently. The
  /// map/reduce tasks inside an epoch still run on the cluster's pool.
  int scheduler_threads = 2;

  /// Background poll cadence for Start().
  double poll_interval_ms = 10;

  /// Durability floor for every registered pipeline: Register() raises a
  /// pipeline's mode to at least this (a pipeline may ask for stricter
  /// durability than the deployment default, never weaker).
  DurabilityMode durability = DurabilityMode::kProcessCrash;

  /// Admission hook consulted by the background scheduler before each
  /// epoch submission: return false to defer the pipeline's refresh this
  /// poll round (counted as <metrics_prefix>.epochs_deferred). The serving
  /// layer wires per-tenant token buckets in here so one tenant's delta
  /// backlog can't monopolize the scheduler. Explicit DrainAll() calls
  /// bypass the gate, like they bypass failure backoff. Must be
  /// thread-safe; called from the poller thread.
  std::function<bool(const Pipeline&)> epoch_gate;

  /// Where the manager publishes its counters (epochs committed, deltas
  /// applied, failures, deferrals, reads served), under
  /// "<metrics_prefix>.<counter>". Defaults to MetricsRegistry::Default();
  /// per-shard managers use distinct prefixes so one registry holds the
  /// whole fleet side by side.
  MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "pipeline_manager";

  /// Epochs slower than this log one structured `slow_epoch` WARN line
  /// with the stage breakdown inline (map/shuffle/sort/reduce/merge), so
  /// a tail-latency epoch explains itself without a trace attached.
  /// <= 0 disables the log line. Every epoch's wall time additionally
  /// lands in the "<metrics_prefix>.epoch_wall_ns" histogram.
  double slow_epoch_ms = 1000;
};

class PipelineManager {
 public:
  explicit PipelineManager(LocalCluster* cluster,
                           PipelineManagerOptions options = {});
  ~PipelineManager();

  PipelineManager(const PipelineManager&) = delete;
  PipelineManager& operator=(const PipelineManager&) = delete;

  /// Open (or recover) a pipeline and take ownership. Fails with
  /// AlreadyExists on duplicate names.
  StatusOr<Pipeline*> Register(const std::string& name,
                               PipelineOptions options);

  /// nullptr when unknown.
  Pipeline* Get(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Durable ingestion, routed by pipeline name.
  StatusOr<uint64_t> Append(const std::string& name, const DeltaKV& delta);
  Status AppendBatch(const std::string& name,
                     const std::vector<DeltaKV>& deltas);

  /// Submit an epoch for every pipeline whose trigger fired and that has no
  /// epoch in flight. Returns the number scheduled; non-blocking.
  int ScheduleReady();

  /// Run epochs (concurrently across pipelines) until no pipeline has
  /// pending deltas; blocks. Ignores min-batch/max-lag triggers. Returns
  /// the first epoch failure, if any.
  Status DrainAll();

  /// Background scheduling: a poller thread calling ScheduleReady() every
  /// poll_interval_ms. Stop() (or destruction) joins it and waits for
  /// in-flight epochs.
  void Start();
  void Stop();
  /// True while the background poller is scheduling epochs. The reshard
  /// coordinator uses this to carry the donors' scheduling state over to
  /// the destination fleet at cutover.
  bool running() const { return polling_.load(); }

  const ServingView& view() const { return view_; }

  /// Point-in-time counter values. Backed by the MetricsRegistry the
  /// manager publishes into (options().metrics under metrics_prefix), so
  /// external collectors read the same numbers without this accessor.
  struct Stats {
    uint64_t epochs_committed = 0;
    uint64_t deltas_applied = 0;   // records replayed into epochs
    uint64_t epoch_failures = 0;
    uint64_t epochs_deferred = 0;  // epoch_gate said "not now"
    uint64_t reads_served = 0;     // ServingView lookups + snapshots
  };
  Stats stats() const;

  const PipelineManagerOptions& options() const { return options_; }

 private:
  struct Entry {
    std::unique_ptr<Pipeline> pipeline;
    std::atomic<bool> running{false};
    Status last_error;  // guarded by err_mu
    std::mutex err_mu;
    /// Poller backoff after epoch failures: ScheduleReady skips the entry
    /// until this deadline (exponential in consecutive_failures), so a
    /// persistently failing epoch doesn't burn a restore + refresh attempt
    /// every poll interval. Explicit DrainAll calls ignore it.
    std::atomic<int64_t> next_attempt_ns{0};
    std::atomic<int> consecutive_failures{0};
  };

  /// Claim the entry and run one epoch on the scheduler pool. Returns
  /// false if it was already running or has nothing pending.
  bool SubmitEpoch(Entry* entry);
  void RunEpochTask(Entry* entry);

  std::vector<Entry*> Entries() const;

  LocalCluster* cluster_;
  PipelineManagerOptions options_;
  ThreadPool sched_pool_;
  ServingView view_;

  mutable std::mutex mu_;           // protects entries_ (the map only)
  std::mutex register_mu_;          // serializes whole Register() calls
  std::map<std::string, std::unique_ptr<Entry>> entries_;

  std::thread poller_;
  std::atomic<bool> polling_{false};

  /// Per-instance tallies (stats() stays exact per manager) mirrored into
  /// registry counters under metrics_prefix (the shared observability
  /// surface — several managers may publish into one registry).
  struct PublishedCounter {
    std::atomic<uint64_t> local{0};
    Counter* published = nullptr;
    void Add(uint64_t d) {
      local.fetch_add(d);
      published->Add(static_cast<int64_t>(d));
    }
    void Increment() { Add(1); }
  };
  PublishedCounter epochs_committed_;
  PublishedCounter deltas_applied_;
  PublishedCounter epoch_failures_;
  PublishedCounter epochs_deferred_;
  mutable PublishedCounter reads_served_;
  Histogram* epoch_wall_hist_ = nullptr;  // registry-owned

  friend class ServingView;
};

}  // namespace i2mr

#endif  // I2MR_PIPELINE_PIPELINE_MANAGER_H_
