// Pipeline: binds a name + an app's iterative map/reduce spec + an
// IncrementalIterativeEngine into a continuously refreshable computation.
//
// Updates arrive through a durable DeltaLog; RunEpoch() drains the log up
// to a sequence watermark, materializes the batch as the engine's delta
// structure input, runs the incremental refresh (paper §5), and commits the
// refreshed state *atomically with* the consumed watermark:
//
//   pipeline/<name>/
//     log/seg-*.dat      segmented durable delta log (CRC32-framed,
//                        recovery-by-scan, O(segments) purge, optional
//                        archive/)
//     epoch-<E>/         committed snapshot: per-partition structure/state/
//                        MRBG files (hard-linked from the engine's working
//                        dirs — O(1) per file; copied only cross-device) +
//                        serving.dat (ResultStore) + MANIFEST (epoch,
//                        watermark, CRC)
//     CURRENT            names the committed epoch dir (tmp+rename swap)
//
// The commit is the CURRENT rename: a crash at any earlier point (mid-drain,
// mid-refresh, even mid-commit after the epoch dir landed) leaves CURRENT on
// the previous epoch, and Open() restores the engine's working directories
// from that snapshot and replays the log past its watermark — every logged
// delta is applied exactly once relative to the committed state.
//
// Point lookups are served from an immutable in-memory snapshot of the
// committed ResultStore, swapped at commit time, so reads never block on a
// running refresh.
#ifndef I2MR_PIPELINE_PIPELINE_H_
#define I2MR_PIPELINE_PIPELINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/incr_iter_engine.h"
#include "core/result_store.h"
#include "mr/cluster.h"
#include "pipeline/delta_log.h"

namespace i2mr {

class HealthRegistry;

struct PipelineOptions {
  /// The app's iterative job spec. `spec.name` is overridden with the
  /// pipeline name so concurrent pipelines never share engine directories.
  IterJobSpec spec;

  /// Incremental engine options (CPC threshold, MRBG maintenance, ...).
  /// Note: `engine.charge_job_startup_per_refresh` is forced to false by
  /// the pipeline — its refresh job is resident (submitted once at
  /// bootstrap, loop-alive across epochs), so the paper's per-refresh
  /// job-submission charge does not apply. Use the engine directly (as the
  /// batch benches do) to model separately submitted refresh jobs.
  IncrIterOptions engine;

  /// Delta-log layout knobs (segment rotation threshold, archival). The
  /// log's durability field is overridden by `durability` below so the log
  /// and the commit path always promise the same thing.
  DeltaLogOptions log;

  /// kProcessCrash (default): appends/commits reach the OS and survive
  /// process death. kPowerFailure: the delta log, epoch MANIFEST and
  /// CURRENT swap are fsync'd — acknowledged appends and committed epochs
  /// survive kernel panic / power loss.
  DurabilityMode durability = DurabilityMode::kProcessCrash;

  /// Epoch trigger: ready once this many deltas are pending.
  uint64_t min_batch = 1;

  /// Epoch trigger: ready once the oldest pending delta has waited this
  /// long, even below min_batch (< 0 disables the lag trigger).
  double max_lag_ms = -1;

  /// Drop consumed log records after each commit (keeps the log bounded).
  bool purge_log_on_commit = true;

  /// Materialize each epoch's drained batch as an inflight.delta file
  /// before refreshing (epoch forensics: a crashed epoch's input is
  /// inspectable on disk). Costs one extra sequential write of the batch
  /// per epoch; turn off for hot paths — the same records remain
  /// reconstructible from the log until the post-commit purge.
  bool materialize_inflight_delta = true;

  /// Partition-map generation this pipeline's shard belongs to (0 for an
  /// unsharded pipeline or a generation-0 fleet). Stamped into every epoch
  /// MANIFEST so replicas detect that shipped state was partitioned by a
  /// different map after an elastic reshard; generation 0 keeps the legacy
  /// 20-byte manifest form.
  uint64_t generation = 0;

  /// Test hook simulating process death: return true to abandon the epoch
  /// at the given stage ("drain", "refresh", "commit") without committing.
  /// The pipeline then refuses further epochs until reopened (or self-heals
  /// by restoring the committed snapshot on the next RunEpoch).
  /// The same points fire from the fault-injection layer: a kind=crash
  /// rule matching "pipeline/<stage>" (io/fault_env.h) kills here without
  /// wiring a lambda.
  std::function<bool(uint64_t epoch, const std::string& stage)> crash_hook;

  // -- Graceful degradation under write failures ----------------------------

  /// A failed delta-log append (I/O error, e.g. disk full) is retried this
  /// many times with exponential backoff before the pipeline gives up and
  /// enters degraded read-only mode.
  int append_retries = 2;
  /// First retry delay; doubles per attempt.
  double append_retry_backoff_ms = 1.0;
  /// While degraded, one incoming append per this interval is admitted as a
  /// probe; the rest bounce with Unavailable. A successful probe exits
  /// degraded mode (auto-resume once space/device recovers).
  double degraded_probe_interval_ms = 50;
  /// Where to report kHealthy/kDegraded/kFailed as "pipeline.<name>"
  /// (nullptr = HealthRegistry::Default()).
  HealthRegistry* health = nullptr;
};

struct EpochStats {
  uint64_t epoch = 0;
  uint64_t deltas_applied = 0;
  uint64_t watermark = 0;
  size_t iterations = 0;
  double refresh_ms = 0;
  double commit_ms = 0;
  double wall_ms = 0;
  bool mrbg_turned_off = false;

  // Where the refresh milliseconds went: per-stage wall time summed over
  // this epoch's incremental iterations (task-summed StageMetrics, so the
  // parts can exceed refresh_ms when tasks run in parallel).
  double refresh_map_ms = 0;
  double refresh_shuffle_ms = 0;
  double refresh_sort_ms = 0;
  double refresh_reduce_ms = 0;
  double refresh_merge_ms = 0;  // MRBG merge share (inside reduce)
};

class Pipeline;

/// A pinned, immutable view of one committed epoch (MVCC-style versioned
/// read). While any copy of the pin is alive, the epoch's in-memory
/// ResultStore snapshot stays valid and its on-disk epoch-<E>/ dir is
/// excluded from post-commit garbage collection — later commits and log
/// purges land underneath without ever blocking or invalidating the
/// reader. Copies share one refcount; when the last copy is destroyed the
/// epoch dir becomes collectible at the next commit. A pin must not
/// outlive its Pipeline.
class EpochPin {
 public:
  EpochPin() = default;

  bool valid() const { return state_ != nullptr; }
  /// Epoch / consumed-watermark this view was committed at.
  uint64_t epoch() const;
  uint64_t watermark() const;
  /// The frozen result snapshot (nullptr for a default-constructed pin).
  const ResultStore* store() const;
  /// On-disk epoch dir, guaranteed to survive while the pin is held.
  const std::string& dir() const;

  /// Point lookup against the frozen view; NotFound for unknown keys.
  StatusOr<std::string> Lookup(const std::string& key) const;

 private:
  friend class Pipeline;
  friend class FollowerReplica;  // mints pins over replicated epochs
  /// The shared pin payload. `unpin` decouples the refcount release from
  /// Pipeline specifically, so a FollowerReplica (a read-only replayed
  /// slice with no Pipeline object) can mint pins the ShardSnapshot
  /// machinery consumes unchanged.
  struct State {
    std::function<void(uint64_t epoch)> unpin;  // runs at last-copy death
    uint64_t epoch = 0;
    uint64_t watermark = 0;
    std::shared_ptr<const ResultStore> store;
    std::string dir;
    ~State() {
      if (unpin) unpin(epoch);
    }
  };
  explicit EpochPin(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Pipeline {
 public:
  /// Open (or create) the pipeline under `cluster`'s root. If a committed
  /// epoch exists, the engine's working directories are restored from its
  /// snapshot (crash recovery) and serving resumes from it immediately.
  static StatusOr<std::unique_ptr<Pipeline>> Open(LocalCluster* cluster,
                                                  const std::string& name,
                                                  PipelineOptions options);

  /// Job A1: full computation over the initial structure data, then the
  /// epoch-0 commit. Appends that raced ahead of Bootstrap stay in the log
  /// and are consumed by the first epoch.
  Status Bootstrap(const std::vector<KV>& structure,
                   const std::vector<KV>& initial_state);

  bool bootstrapped() const { return bootstrapped_.load(); }

  /// Durably append one update / a batch to the delta log. Transient I/O
  /// failures are retried (options.append_retries); persistent failure
  /// flips the pipeline into degraded read-only mode — further appends
  /// bounce with Unavailable while reads, pinned snapshots and replica
  /// shipping keep serving the committed state. One append per probe
  /// interval is let through; the first one that succeeds exits degraded
  /// mode automatically.
  StatusOr<uint64_t> Append(const DeltaKV& delta);
  StatusOr<uint64_t> AppendBatch(const std::vector<DeltaKV>& deltas);

  /// True while the pipeline is in degraded read-only mode (appends bounce,
  /// epoch scheduling pauses).
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  /// Why the pipeline degraded ("" when healthy).
  std::string degraded_reason() const;

  /// Deltas logged but not yet consumed by a committed epoch.
  uint64_t pending() const;

  /// Milliseconds the oldest pending delta has been waiting (0 when none).
  double pending_lag_ms() const;

  /// min-batch / max-lag trigger evaluation.
  bool EpochReady() const;

  /// Drain -> refresh -> commit one epoch. Returns a zero-delta EpochStats
  /// when nothing is pending. Serialized internally: concurrent calls queue.
  StatusOr<EpochStats> RunEpoch();

  // -- Coordinated (cross-shard) epochs --------------------------------------
  //
  // The serving layer's ShardRouter::RefreshCoordinated() drives every
  // shard's pipeline through the same epoch under a barrier: refresh rounds
  // exchange boundary edges until the joint fixpoint, then every shard's
  // epoch dir is staged, a coordinator barrier record makes the decision
  // durable, and only then are the CURRENT files flipped — so readers see
  // either all shards at epoch N or all at N-1, never a mix. Calls must
  // not interleave with RunEpoch (the router owns both).

  /// One refresh round without a commit. `first` starts a new coordinated
  /// epoch: rolls back a dirty working state, then drains the pending log
  /// records (deltas arriving later wait for the next epoch). `remote_in`
  /// is folded into the engine's remote inbox; the refresh runs when there
  /// is any work (drained deltas, changed remote edges, or inbox DKs a
  /// previous failed round left pending). Returns captured boundary
  /// exports; the router's final absorb round discards them.
  struct RoundResult {
    std::vector<DeltaEdge> exports;
    uint64_t deltas_drained = 0;
    size_t iterations = 0;
    /// Sum of per-iteration state change of this round's refresh (0 when
    /// no refresh ran) — the router's joint-fixpoint criterion.
    double total_diff = 0;
    bool refreshed = false;
  };
  StatusOr<RoundResult> RefreshRound(bool first,
                                     const std::vector<DeltaEdge>& remote_in);

  /// Coordinated bootstrap: the full computation without the epoch-0
  /// commit. Exchange rounds (RefreshRound(first=false, ...)) then fold in
  /// the other shards' contributions; StageEpoch(0)/Finalize commits.
  Status BootstrapPrepare(const std::vector<KV>& structure,
                          const std::vector<KV>& initial_state);

  /// Phase 1: write + rename epoch-<E>/ with the in-flight watermark, but
  /// do NOT flip CURRENT — a crash before the coordinator's barrier record
  /// leaves this an orphan dir that recovery garbage-collects.
  Status StageEpoch(uint64_t epoch, double* commit_ms);

  /// Phase 2: flip CURRENT to the staged epoch and publish the serving
  /// snapshot. After this returns the epoch is durable on this shard.
  Status FinalizeStagedEpoch();

  /// Post-barrier housekeeping: GC superseded epoch dirs + purge the log
  /// through the committed watermark. Failures are logged, not fatal.
  Status CleanupCommitted();

  /// Abandon an in-flight coordinated epoch (a sibling shard failed): the
  /// working state is marked dirty and rolled back to the committed
  /// snapshot before the next refresh.
  void AbortCoordinated();

  /// Point lookup from the committed serving snapshot. Never blocks on a
  /// running refresh; NotFound for unknown keys.
  StatusOr<std::string> Lookup(const std::string& key) const;

  /// The whole committed result, sorted by key.
  std::vector<KV> ServingSnapshot() const;

  /// Pin the currently committed epoch for non-blocking versioned reads.
  /// The returned pin's (epoch, store) pair is taken atomically, so a
  /// reader never sees a half-committed epoch — it gets the previous
  /// committed view or the new one, whole. Invalid (default) pin before
  /// Bootstrap.
  EpochPin PinServing() const;

  /// Replication hooks: observe epoch lifecycle transitions. `on_staged`
  /// fires once an epoch dir has fully landed on disk (before CURRENT
  /// moves — a shipper may pre-stage it at followers); `on_committed`
  /// fires after the CURRENT flip made the epoch durable (only then may a
  /// follower serve it). Callbacks run inside the commit path while the
  /// listener registration is held — keep them cheap (enqueue + wake) and
  /// never call back into the pipeline. Setting a new listener (or {})
  /// waits out an in-flight callback.
  struct EpochListener {
    std::function<void(uint64_t epoch, const std::string& dir)> on_staged;
    std::function<void(uint64_t epoch, const std::string& dir,
                       uint64_t watermark)>
        on_committed;
  };
  void SetEpochListener(EpochListener listener);

  /// Read + CRC-check an epoch dir's MANIFEST. Shared with replication's
  /// ship-side and promotion-time verification.
  static Status ReadEpochManifest(const std::string& dir, uint64_t* epoch,
                                  uint64_t* watermark);
  /// Variant that also returns the partition-map generation the epoch was
  /// committed under (0 for legacy 20-byte manifests).
  static Status ReadEpochManifest(const std::string& dir, uint64_t* epoch,
                                  uint64_t* watermark, uint64_t* generation);

  uint64_t committed_epoch() const { return committed_epoch_.load(); }
  /// Partition-map generation this pipeline stamps into its manifests.
  uint64_t generation() const { return options_.generation; }
  uint64_t committed_watermark() const { return committed_watermark_.load(); }
  /// On-disk name of an epoch's snapshot dir ("epoch-%08u"). Shared with
  /// the serving layer's barrier recovery, which rewinds CURRENT files
  /// before any Pipeline object exists.
  static std::string EpochDirName(uint64_t epoch);
  const std::string& name() const { return name_; }
  /// Effective options (after Open's name override and any manager floor).
  const PipelineOptions& options() const { return options_; }
  DeltaLog* log() { return log_.get(); }
  IncrementalIterativeEngine* engine() { return engine_.get(); }

 private:
  Pipeline(LocalCluster* cluster, std::string name, PipelineOptions options);

  std::string Dir() const;
  std::string CurrentPath() const;

  Status OpenImpl();
  /// Copy the committed snapshot back over the engine's working dirs.
  Status RestoreCommitted();
  /// Snapshot engine state + serving store + manifest into epoch-<E>/ and
  /// swing CURRENT to it (stage + finalize + cleanup in one step — the
  /// solo, per-shard commit). Fills commit_ms. `pending_since_ns` re-arms
  /// the max-lag clock for deltas that arrived behind the drain point (0 =
  /// no drain point, use now). Caller holds epoch_mu_.
  Status Commit(uint64_t epoch, uint64_t watermark, double* commit_ms,
                int64_t pending_since_ns = 0);
  /// Commit phases (callers hold epoch_mu_): stage the epoch dir without
  /// touching CURRENT; flip CURRENT + publish the staged serving store;
  /// GC + purge after the (local or cross-shard) commit completed.
  Status StageEpochLocked(uint64_t epoch, uint64_t watermark,
                          int64_t pending_since_ns, double* commit_ms);
  Status FinalizeStagedLocked();
  Status CleanupCommittedLocked();
  /// Remove epoch dirs and temp dirs not referenced by CURRENT.
  Status GarbageCollect(const std::string& keep_dir_name);

  bool SimulateCrash(uint64_t epoch, const char* stage);

  /// Degraded-mode gate for Append/AppendBatch: OK ⇒ this caller may hit
  /// the log (healthy, or elected as the probe); Unavailable ⇒ bounce.
  Status AdmitAppend();
  void EnterDegraded(const Status& cause);
  void ExitDegraded();

  friend class EpochPin;
  /// Drop one reference on `epoch`'s pin count (EpochPin destruction).
  void Unpin(uint64_t epoch) const;
  bool IsPinned(uint64_t epoch) const;

  /// Start the max-lag clock if it isn't already running (post-append).
  void ArmLagTrigger();

  LocalCluster* cluster_;
  const std::string name_;
  PipelineOptions options_;

  std::unique_ptr<DeltaLog> log_;
  std::unique_ptr<IncrementalIterativeEngine> engine_;

  std::mutex epoch_mu_;  // serializes Bootstrap / RunEpoch / rounds / recovery
  std::atomic<bool> bootstrapped_{false};
  std::atomic<uint64_t> committed_epoch_{0};
  std::atomic<uint64_t> committed_watermark_{0};

  /// Coordinated-epoch state (guarded by epoch_mu_): refresh rounds
  /// accumulate into the working state against this watermark until the
  /// router stages + finalizes (or aborts).
  bool inflight_ = false;
  uint64_t inflight_watermark_ = 0;
  uint64_t inflight_deltas_ = 0;
  int64_t inflight_drain_ns_ = 0;  // 0 = nothing drained yet

  /// A staged-but-unfinalized epoch (guarded by epoch_mu_).
  struct Staged {
    bool valid = false;
    uint64_t epoch = 0;
    uint64_t watermark = 0;
    int64_t pending_since_ns = 0;
    std::string final_name;
    std::unique_ptr<ResultStore> store;
  };
  Staged staged_;
  /// Set when an epoch died after possibly mutating engine state; the next
  /// RunEpoch restores the committed snapshot before proceeding.
  std::atomic<bool> dirty_{false};

  /// Degraded read-only mode (persistent append failure). next_probe_ns_
  /// elects one append per probe interval via CAS; the rest bounce.
  HealthRegistry* health_ = nullptr;  // resolved in Open
  std::atomic<bool> degraded_{false};
  std::atomic<int64_t> next_probe_ns_{0};
  mutable std::mutex degraded_mu_;  // guards degraded_reason_
  std::string degraded_reason_;
  /// Arrival time of the oldest unconsumed delta (0 = none). Updates are
  /// serialized by trigger_mu_ so a commit deciding "nothing pending"
  /// cannot clobber a concurrent append that just armed the clock; reads
  /// stay lock-free.
  std::mutex trigger_mu_;
  std::atomic<int64_t> oldest_pending_ns_{0};

  /// Guards the committed (epoch, serving store) pair as one publication:
  /// Commit swaps both under it, PinServing reads both under it.
  mutable std::mutex serving_mu_;
  std::shared_ptr<const ResultStore> serving_;

  /// Epoch lifecycle listener (leaf lock; held across the callback so
  /// SetEpochListener doubles as a drain of in-flight notifications).
  std::mutex listener_mu_;
  EpochListener listener_;

  /// Epoch -> live pin count. Locked after serving_mu_ (PinServing) and on
  /// its own everywhere else; GarbageCollect consults it to keep pinned
  /// epoch dirs on disk.
  mutable std::mutex pin_mu_;
  mutable std::map<uint64_t, int> pins_;
};

}  // namespace i2mr

#endif  // I2MR_PIPELINE_PIPELINE_H_
