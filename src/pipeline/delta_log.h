// DeltaLog: the durable ingestion edge of a pipeline. An append-only log of
// structure-data updates (insert / update / delete DeltaKVs), each assigned
// a monotonically increasing sequence number and framed like the MRBG chunk
// format:
//
//   [u32 magic][u32 payload_len][payload][u32 crc32-of-payload]
//   payload = [u64 seq][u8 op][u32 klen][key][u32 vlen][value]
//
// Open() recovers by scanning the file front to back: the longest valid
// prefix wins, and a torn or garbled tail (partial frame, bad magic, CRC
// mismatch) is truncated away so the next append lands on a clean boundary.
// Records stay in an in-memory index ordered by sequence number, so readers
// (epoch drains, lag probes) never touch the file; PurgeThrough() drops the
// consumed prefix once a pipeline epoch has durably committed its watermark.
#ifndef I2MR_PIPELINE_DELTA_LOG_H_
#define I2MR_PIPELINE_DELTA_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/status.h"
#include "io/file.h"

namespace i2mr {

/// One logged update: the delta record plus its log sequence number.
struct SeqDelta {
  uint64_t seq = 0;
  DeltaKV delta;
};

class DeltaLog {
 public:
  /// What the recovery scan found on open.
  struct RecoveryStats {
    uint64_t records = 0;         // valid records recovered
    uint64_t valid_bytes = 0;     // length of the valid prefix
    uint64_t discarded_bytes = 0; // torn/garbled tail truncated away
  };

  /// Open (or create) the log backed by `dir`/log.dat, recovering by scan.
  static StatusOr<std::unique_ptr<DeltaLog>> Open(const std::string& dir);

  ~DeltaLog();
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Raise the sequence floor: the next append gets a seq > `seq`. Called
  /// by the owner after recovering its committed watermark, so that a log
  /// whose records were all purged (or lost) never re-issues sequence
  /// numbers at or below the watermark — those appends would look already
  /// consumed and be silently skipped.
  void EnsureNextSeqAfter(uint64_t seq);

  /// Append one update; the record is flushed to the OS when this returns,
  /// so it survives process death (the durability model throughout this
  /// subsystem — surviving kernel/power failure would need fsync on the
  /// log, MANIFEST and CURRENT writes; see ROADMAP). Returns the assigned
  /// sequence number. Fails with InvalidArgument when a field exceeds
  /// kMaxRecordFieldLen (the recovery scan would reject the frame as
  /// corrupt, losing everything after it).
  StatusOr<uint64_t> Append(const DeltaKV& delta);

  /// Append a batch with one flush; returns the last assigned sequence.
  StatusOr<uint64_t> AppendBatch(const std::vector<DeltaKV>& deltas);

  /// All records with `after < seq <= upto`, in sequence order.
  std::vector<SeqDelta> ReadRange(uint64_t after, uint64_t upto) const;

  /// Drop every record with seq <= `watermark` (consumed by a committed
  /// epoch): rewrites the live suffix to a temp file and renames it in.
  Status PurgeThrough(uint64_t watermark);

  /// Highest assigned sequence number (0 when nothing was ever appended).
  uint64_t last_seq() const;

  /// Number of records currently retained (post-purge).
  uint64_t live_records() const;

  const RecoveryStats& recovery_stats() const { return recovery_; }
  const std::string& path() const { return path_; }

  Status Close();

 private:
  explicit DeltaLog(std::string path) : path_(std::move(path)) {}

  Status Recover();
  Status AppendLocked(const DeltaKV& delta, uint64_t* seq);
  /// Undo a partially applied append group (truncate + drop records).
  Status RollbackLocked(uint64_t file_offset, size_t record_count,
                        uint64_t next_seq);

  const std::string path_;
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  std::vector<SeqDelta> records_;  // ordered by seq (the in-memory index)
  uint64_t next_seq_ = 1;
  RecoveryStats recovery_;
};

/// Frame one record (appends to *out). Exposed for tests and tools.
void EncodeLogRecord(uint64_t seq, const DeltaKV& delta, std::string* out);

}  // namespace i2mr

#endif  // I2MR_PIPELINE_DELTA_LOG_H_
