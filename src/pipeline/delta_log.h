// DeltaLog: the durable ingestion edge of a pipeline. An append-only log of
// structure-data updates (insert / update / delete DeltaKVs), each assigned
// a monotonically increasing sequence number and framed like the MRBG chunk
// format:
//
//   [u32 magic][u32 payload_len][payload][u32 crc32-of-payload]
//   payload = [u64 seq][u8 op][u32 klen][key][u32 vlen][value]
//
// The log is *segmented* (LSM/WAL-style): appends go to the active
// `seg-<firstseq>.dat`; once it reaches `segment_bytes` it is sealed
// (immutable from then on) and a new active segment is opened. On disk:
//
//   <dir>/seg-00000000000000000001.dat   sealed
//   <dir>/seg-00000000000000004096.dat   sealed
//   <dir>/seg-00000000000000008192.dat   active (tail may be torn)
//   <dir>/PURGE                          highest purged watermark (crc'd)
//   <dir>/archive/seg-*.dat              consumed segments (archival mode)
//
// Open() recovers by scanning segments in sequence order: a torn or garbled
// tail is truncated away only on the *last* segment (a crash mid-append);
// damage inside a sealed segment is real corruption and fails the open.
// Records stay in an in-memory index ordered by sequence number, so readers
// (epoch drains, lag probes) never touch the files.
//
// PurgeThrough() is O(segments), not O(live bytes): it durably bumps the
// PURGE watermark, then unlinks (or archives) fully consumed segments
// outside the log mutex — appends never stall behind a purge, and live
// records are never rewritten. Consumed records inside a partially consumed
// segment cost only their disk bytes until that segment retires.
#ifndef I2MR_PIPELINE_DELTA_LOG_H_
#define I2MR_PIPELINE_DELTA_LOG_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/status.h"
#include "io/file.h"

namespace i2mr {

/// One logged update: the delta record plus its log sequence number.
struct SeqDelta {
  uint64_t seq = 0;
  DeltaKV delta;
};

struct DeltaLogOptions {
  /// Rotation threshold: the active segment is sealed once it holds at
  /// least this many bytes (a large batch may overshoot by its own size).
  uint64_t segment_bytes = 4ull << 20;

  /// Move fully consumed segments into `<dir>/archive/` instead of
  /// unlinking them (cold storage for replay/debugging, and the
  /// replication shipper's fallback source for a segment that retired
  /// before it shipped).
  bool archive_purged = false;

  /// With archive_purged: compact the retired segment to its valid record
  /// prefix and LZ-compress it into `archive/seg-*.lzd` instead of
  /// renaming the raw file. Scans read `.lzd` segments transparently, so
  /// a follower replaying shipped archives never notices the codec.
  bool compress_archive = false;

  /// Recovery/replay scans memory-map segment files at least this large
  /// instead of buffering them through read(2) — the large-backlog
  /// follower catch-up path. 0 disables mapping (always stream).
  uint64_t mmap_scan_bytes = 1ull << 20;

  /// kProcessCrash: appends are flushed to the OS. kPowerFailure: appends,
  /// rotation and the PURGE mark are fsync'd before success is reported.
  DurabilityMode durability = DurabilityMode::kProcessCrash;

  /// Test hook simulating process death at a segment boundary: return true
  /// to abandon the operation at the given stage ("rotate" — the old
  /// active was sealed but no new segment exists yet; "purge-marked" — the
  /// PURGE watermark is durable but consumed segments are not yet
  /// retired). The log then refuses further appends until reopened.
  /// The same points fire from the fault-injection layer: a kind=crash
  /// rule matching "delta_log/rotate" or "delta_log/purge-marked"
  /// (io/fault_env.h) kills here without wiring a lambda.
  std::function<bool(const std::string& stage)> crash_hook;
};

class DeltaLog {
 public:
  /// What the recovery scan found on open.
  struct RecoveryStats {
    uint64_t records = 0;         // live records recovered (post-purge)
    uint64_t segments = 0;        // segment files scanned
    uint64_t valid_bytes = 0;     // total length of the valid prefixes
    uint64_t discarded_bytes = 0; // torn/garbled tail truncated away
  };

  /// Open (or create) the log backed by segment files under `dir`,
  /// recovering by scan. A legacy single-file `log.dat` is migrated to a
  /// segment in place.
  static StatusOr<std::unique_ptr<DeltaLog>> Open(const std::string& dir,
                                                  DeltaLogOptions options = {});

  ~DeltaLog();
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Raise the sequence floor: the next append gets a seq > `seq`. Called
  /// by the owner after recovering its committed watermark, so that a log
  /// whose records were all purged (or lost) never re-issues sequence
  /// numbers at or below the watermark — those appends would look already
  /// consumed and be silently skipped.
  void EnsureNextSeqAfter(uint64_t seq);

  /// Append one update; the record is flushed to the OS (and fsync'd in
  /// kPowerFailure mode) when this returns. Returns the assigned sequence
  /// number. Fails with InvalidArgument when a field exceeds
  /// kMaxRecordFieldLen (the recovery scan would reject the frame as
  /// corrupt, losing everything after it).
  StatusOr<uint64_t> Append(const DeltaKV& delta);

  /// Append a batch with one flush; returns the last assigned sequence.
  ///
  /// Concurrent calls group-commit: appenders queue, the front one becomes
  /// the leader, writes every queued batch's frames, and issues ONE
  /// flush/fsync covering the whole group — in kPowerFailure mode
  /// concurrent appenders amortize the fsync instead of paying one each.
  /// Records become visible to readers (ReadRange) only once their group's
  /// flush succeeded, so a drain can never consume a record whose append
  /// later fails and rolls back.
  StatusOr<uint64_t> AppendBatch(const std::vector<DeltaKV>& deltas);

  /// All records with `after < seq <= upto`, in sequence order.
  std::vector<SeqDelta> ReadRange(uint64_t after, uint64_t upto) const;

  /// Drop every record with seq <= `watermark` (consumed by a committed
  /// epoch). Durably records the watermark, then retires fully consumed
  /// segments outside the log mutex — O(segments), no live-byte rewrite.
  Status PurgeThrough(uint64_t watermark);

  /// Highest assigned sequence number (0 when nothing was ever appended).
  uint64_t last_seq() const;

  /// Number of records currently retained (post-purge).
  uint64_t live_records() const;

  /// Segment files currently backing the log (sealed + active).
  uint64_t segment_files() const;

  /// Highest durably purged watermark (0 when never purged).
  uint64_t purge_watermark() const;

  /// Leader flush/fsync calls issued so far: with concurrent appenders this
  /// grows slower than the append count (the group-commit amortization).
  uint64_t sync_count() const;

  const RecoveryStats& recovery_stats() const { return recovery_; }
  /// Path of the active (appendable) segment.
  std::string path() const;
  const std::string& dir() const { return dir_; }

  /// Sealed (immutable, shippable) segment paths in sequence order,
  /// excluding the active segment and anything already retired.
  std::vector<std::string> SealedSegmentPaths() const;

  /// Observe segment seals: called with the sealed file's path and the
  /// highest sequence it holds, every time the active segment rotates.
  /// Runs under the log mutex — the callback must be cheap (enqueue +
  /// wake) and must never call back into this log. nullptr detaches;
  /// detaching waits out an in-flight notification.
  void SetSealListener(
      std::function<void(const std::string& path, uint64_t last_seq)> listener);

  Status Close();

 private:
  struct SegmentInfo {
    std::string path;
    uint64_t last_seq = 0;  // highest seq it holds (0 = empty)
    uint64_t records = 0;
  };

  explicit DeltaLog(std::string dir, DeltaLogOptions options)
      : dir_(std::move(dir)), options_(std::move(options)) {}

  Status Recover();
  Status MigrateLegacyLog();
  /// Scan one segment file; appends live records to records_. Fills
  /// *last_seq / *nrecords with what the segment holds. `is_last` enables
  /// torn-tail truncation; `prev_max` is the highest seq of any earlier
  /// segment (cross-segment monotonicity check).
  Status ScanSegment(const std::string& path, bool is_last, uint64_t prev_max,
                     uint64_t* last_seq, uint64_t* nrecords);
  /// One queued AppendBatch call (group commit). The front writer is the
  /// leader: it stages frames for every queued writer, performs the I/O
  /// with mu_ released (writers behind it park on cv_, so nothing else
  /// touches file_), then publishes results and wakes the group.
  struct Writer {
    const std::vector<DeltaKV>* deltas = nullptr;
    bool done = false;
    Status status;
    uint64_t last_seq = 0;
  };

  /// Leader body for one group commit; called with `lock` held on mu_ and
  /// *this writer at the front of writers_.
  void CommitGroupLocked(std::unique_lock<std::mutex>& lock);
  /// Undo a partially applied append group (truncate + drop records).
  Status RollbackLocked(uint64_t file_offset, size_t record_count,
                        uint64_t next_seq, uint64_t active_last_seq,
                        uint64_t active_records);
  /// Seal the active segment and open a fresh one named after next_seq_.
  Status RotateLocked();
  /// Durably record purge_watermark_ in <dir>/PURGE (tmp + rename).
  Status WritePurgeMarkLocked();
  /// Unlink or archive a fully consumed segment file.
  Status RetireSegmentFile(const std::string& path);
  bool SimulateCrashLocked(const char* stage);

  const std::string dir_;
  const DeltaLogOptions options_;
  mutable std::mutex mu_;
  /// Group-commit writer queue (guarded by mu_). cv_ wakes parked writers
  /// when their group completes and the next leader when it reaches the
  /// front; it also signals io_in_progress_ dropping back to false.
  std::deque<Writer*> writers_;
  std::condition_variable cv_;
  /// True while the leader writes/syncs with mu_ released. PurgeThrough
  /// and Close wait it out before touching file_.
  bool io_in_progress_ = false;
  uint64_t sync_calls_ = 0;
  std::unique_ptr<WritableFile> file_;  // active segment
  std::string active_path_;
  uint64_t active_last_seq_ = 0;
  uint64_t active_records_ = 0;
  std::vector<SegmentInfo> sealed_;     // in sequence order
  std::vector<SeqDelta> records_;       // ordered by seq (in-memory index)
  uint64_t next_seq_ = 1;
  uint64_t purge_watermark_ = 0;
  RecoveryStats recovery_;
  /// Seal notification (guarded by mu_; invoked under mu_ from rotation).
  std::function<void(const std::string& path, uint64_t last_seq)>
      seal_listener_;
};

/// Frame one record (appends to *out). Exposed for tests and tools.
void EncodeLogRecord(uint64_t seq, const DeltaKV& delta, std::string* out);

/// Segment file name for a first sequence number ("seg-<20-digit-seq>.dat").
std::string DeltaLogSegmentName(uint64_t first_seq);

/// True for any segment file name this log reads: raw ("seg-*.dat") or
/// compressed archive ("seg-*.lzd").
bool IsDeltaLogSegmentFile(const std::string& path);

/// True for the compressed-archive form ("seg-*.lzd") specifically.
bool IsCompressedDeltaLogSegmentFile(const std::string& path);

/// First sequence number encoded in a segment file name (0 when `path` is
/// not a segment file).
uint64_t DeltaLogSegmentFirstSeq(const std::string& path);

/// Durably write `<dir>/PURGE` = watermark (tmp + rename, synced when
/// `sync`). Shared with follower replicas, which maintain the same mark
/// over their shipped segment copies so a promoted follower's recovery
/// drops exactly the records its applied epoch already consumed.
Status WriteDeltaLogPurgeMark(const std::string& dir, uint64_t watermark,
                              bool sync);

}  // namespace i2mr

#endif  // I2MR_PIPELINE_DELTA_LOG_H_
