// MRBG-Store (paper §3.4 + §5.2): preserves fine-grain MRBGraph state
// (chunks of (K2, {MK, V2})) in an append-only file with a hash chunk
// index, an append buffer for incremental storage, and a read cache with
// four read strategies:
//
//   kIndexOnly          - one exact I/O per chunk (Table 4 "index-only")
//   kSingleFixedWindow  - one fixed-size window shared across batches
//   kMultiFixedWindow   - one fixed-size window per sorted batch
//   kMultiDynamicWindow - Algorithm 1 + the §5.2 multi-window extension:
//                         window sized from the positions of upcoming
//                         queried chunks, per batch (the i2MapReduce
//                         default)
//
// Each merge epoch appends one new sorted batch of chunks; obsolete chunk
// versions remain as garbage until Compact() (the paper's off-line
// reconstruction).
#ifndef I2MR_MRBG_MRBG_STORE_H_
#define I2MR_MRBG_MRBG_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/file.h"
#include "mrbg/chunk.h"
#include "mrbg/chunk_index.h"

namespace i2mr {

enum class ReadMode {
  kIndexOnly,
  kSingleFixedWindow,
  kMultiFixedWindow,
  kMultiDynamicWindow,
};

const char* ReadModeName(ReadMode mode);

struct MRBGStoreOptions {
  ReadMode read_mode = ReadMode::kMultiDynamicWindow;

  /// Read-cache budget: upper bound on one window's size (Algorithm 1's
  /// read_cache.size).
  size_t read_cache_bytes = 4u << 20;

  /// Gap threshold T (Algorithm 1; paper default 100 KB).
  size_t gap_threshold_bytes = 100u << 10;

  /// Window size for the fixed-window modes.
  size_t fixed_window_bytes = 256u << 10;

  /// Append buffer size: appended chunks are buffered in memory and spilled
  /// with sequential I/O when full (paper §3.4 "Incremental Storage").
  size_t append_buffer_bytes = 1u << 20;

  /// Retain up to this many recently flushed append bytes in memory and
  /// serve chunk reads from them. Iterative refreshes query in iteration
  /// j+1 the chunks they merged (appended) in iteration j: with the tail
  /// cache those reads never touch the file. 0 disables (keep it off for
  /// the paper's read-strategy experiments — it would mask the window
  /// machinery the modes compare).
  size_t tail_cache_bytes = 0;
};

struct MRBGStoreStats {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t io_reads = 0;     // Table 4 "# reads"
  uint64_t bytes_read = 0;   // Table 4 "rsize"
  uint64_t chunks_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t chunks_removed = 0;
};

class MRBGStore {
 public:
  /// Open (or create) a store in directory `dir` (files mrbg.dat /
  /// mrbg.idx).
  static StatusOr<std::unique_ptr<MRBGStore>> Open(
      const std::string& dir, const MRBGStoreOptions& options = {});

  ~MRBGStore();

  Status Close();

  // -- Query path -----------------------------------------------------------

  /// Announce the sorted list of keys the following Query() calls will
  /// request (the shuffle phase sorts K2s, so the engine knows this list;
  /// Algorithm 1 input L). Resets window state.
  Status PrepareQueries(std::vector<std::string> sorted_keys);

  /// Retrieve the latest chunk for `key`. Keys must be requested in
  /// PrepareQueries order. Returns NotFound if the key has no live chunk.
  StatusOr<Chunk> Query(const std::string& key);

  bool Contains(const std::string& key) const { return index_.Contains(key); }
  size_t num_chunks() const { return index_.size(); }
  size_t num_batches() const { return index_.batches().size(); }

  /// Iterate all live chunks in key order.
  Status ForEachChunk(const std::function<Status(const Chunk&)>& fn);

  // -- Write path -----------------------------------------------------------

  /// Append a new version of a chunk to the open batch and point the index
  /// at it. Chunks should be appended in K2-sorted order within a batch
  /// (the shuffle guarantees this for the engine).
  Status AppendChunk(const Chunk& chunk);

  /// Drop a chunk from the index (its bytes become garbage).
  Status RemoveChunk(const std::string& key);

  /// Close the open batch: flush the append buffer, record the batch
  /// boundary and (by default) persist the index. Iterative jobs may defer
  /// index persistence to the end of the job (`persist_index = false`) and
  /// call PersistIndex() once — checkpoints persist explicitly.
  Status FinishBatch(bool persist_index = true);

  /// Write the in-memory index to disk.
  Status PersistIndex();

  /// Merge one delta group with the preserved chunk (index nested loop join
  /// step of §3.4): loads the old chunk (if any), applies deletions and
  /// upserts, appends the merged result (or removes it if empty) and
  /// returns it in *merged. Must be called in sorted-K2 order after
  /// PrepareQueries with the same key list.
  Status MergeGroup(const std::string& k2, const std::vector<DeltaEdge>& deltas,
                    Chunk* merged);

  /// Off-line reconstruction: rewrite the file with only live chunks in key
  /// order as a single batch (paper: "The MRBGraph file is reconstructed
  /// off-line when the worker is idle").
  Status Compact();

  // -- Introspection --------------------------------------------------------

  const MRBGStoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MRBGStoreStats{}; }
  uint64_t file_bytes() const { return file_end_; }
  const std::string& dir() const { return dir_; }

  /// Paths (exposed for checkpointing).
  std::string data_path() const;
  std::string index_path() const;

  /// Re-load index and reopen files after an external restore (fault
  /// recovery path).
  Status Reload();

 private:
  MRBGStore(std::string dir, const MRBGStoreOptions& options)
      : dir_(std::move(dir)), options_(options) {}

  struct Window {
    uint64_t start = 0;
    uint64_t end = 0;  // exclusive; == start means empty
    std::string buf;
  };

  Status OpenFiles();
  Status FlushAppendBuffer();
  Status EnsureReader();
  /// Read [offset, offset+length) through the window machinery for a chunk
  /// in `batch`; returns a view valid until the next window load.
  StatusOr<std::string_view> ReadChunkBytes(const ChunkLocation& loc);
  /// Compute the dynamic window size per Algorithm 1 starting at query
  /// cursor position `qpos`.
  uint64_t DynamicWindowEnd(const ChunkLocation& loc, size_t qpos) const;
  uint32_t open_batch_id() const {
    return static_cast<uint32_t>(index_.batches().size());
  }

  std::string dir_;
  MRBGStoreOptions options_;
  ChunkIndex index_;
  std::unique_ptr<WritableFile> writer_;
  std::unique_ptr<RandomAccessFile> reader_;
  bool reader_stale_ = true;
  std::string append_buf_;
  uint64_t file_end_ = 0;  // logical file size incl. unflushed buffer
  // Tail cache (see MRBGStoreOptions::tail_cache_bytes): a retained copy
  // of the most recently flushed bytes. The live region is
  // tail_buf_[tail_dead_..end), covering file offsets
  // [tail_start_, tail_start_ + live size); eviction just grows the dead
  // prefix, and the buffer is compacted only when the dead prefix exceeds
  // the cache budget (amortized, no per-flush memmove).
  std::string tail_buf_;
  size_t tail_dead_ = 0;
  uint64_t tail_start_ = 0;

  std::vector<std::string> query_keys_;  // L, sorted
  size_t query_cursor_ = 0;
  std::map<uint32_t, Window> windows_;  // keyed by batch (single mode: key 0)

  MRBGStoreStats stats_;
};

}  // namespace i2mr

#endif  // I2MR_MRBG_MRBG_STORE_H_
