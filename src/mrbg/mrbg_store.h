// MRBG-Store (paper §3.4 + §5.2): preserves fine-grain MRBGraph state
// (chunks of (K2, {MK, V2})) in an append-only file with a hash chunk
// index, an append buffer for incremental storage, and a read cache with
// four read strategies:
//
//   kIndexOnly          - one exact I/O per chunk (Table 4 "index-only")
//   kSingleFixedWindow  - one fixed-size window shared across batches
//   kMultiFixedWindow   - one fixed-size window per sorted batch
//   kMultiDynamicWindow - Algorithm 1 + the §5.2 multi-window extension:
//                         window sized from the positions of upcoming
//                         queried chunks, per batch (the i2MapReduce
//                         default)
//
// Two on-disk layouts share the query machinery:
//
//  * Raw (paper parity, the default): one append-only mrbg.dat plus a
//    persisted mrbg.idx. Obsolete chunk versions remain as garbage until
//    Compact() (the paper's off-line reconstruction), and deletions live
//    only in the persisted index.
//
//  * Log-structured (options.log_structured; the incremental engine's
//    default): CRC-framed chunk entries and zero-size tombstones appended
//    to rotating segment files (seg-NNNNNN.dat), last-writer-wins per key.
//    A small MANIFEST names the live segments in logical order with their
//    committed lengths; the chunk index is rebuilt by sequentially
//    scanning them on open. A compactor — inline at batch boundaries or
//    on a background thread — rewrites live chunks into a fresh segment
//    and drops superseded/tombstoned ones once the wasted-bytes ratio
//    crosses a threshold. Sealed segments are immutable inodes, so epoch
//    snapshots hard-link them (SnapshotInto) and pinned readers keep
//    serving dropped segments until their links go away.
#ifndef I2MR_MRBG_MRBG_STORE_H_
#define I2MR_MRBG_MRBG_STORE_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "io/file.h"
#include "mrbg/chunk.h"
#include "mrbg/chunk_index.h"

namespace i2mr {

enum class ReadMode {
  kIndexOnly,
  kSingleFixedWindow,
  kMultiFixedWindow,
  kMultiDynamicWindow,
};

const char* ReadModeName(ReadMode mode);

struct MRBGStoreOptions {
  ReadMode read_mode = ReadMode::kMultiDynamicWindow;

  /// Read-cache budget: upper bound on one window's size (Algorithm 1's
  /// read_cache.size).
  size_t read_cache_bytes = 4u << 20;

  /// Gap threshold T (Algorithm 1; paper default 100 KB).
  size_t gap_threshold_bytes = 100u << 10;

  /// Window size for the fixed-window modes.
  size_t fixed_window_bytes = 256u << 10;

  /// Append buffer size: appended chunks are buffered in memory and spilled
  /// with sequential I/O when full (paper §3.4 "Incremental Storage").
  size_t append_buffer_bytes = 1u << 20;

  /// Retain up to this many recently flushed append bytes in memory and
  /// serve chunk reads from them. Iterative refreshes query in iteration
  /// j+1 the chunks they merged (appended) in iteration j: with the tail
  /// cache those reads never touch the file. 0 disables (keep it off for
  /// the paper's read-strategy experiments — it would mask the window
  /// machinery the modes compare).
  size_t tail_cache_bytes = 0;

  // ---- Log-structured layout (segment log + compaction) -------------------

  /// Use the segmented log layout described in the file header. A store
  /// directory that already holds a MANIFEST opens log-structured
  /// regardless of this flag (the on-disk format wins); a raw-layout
  /// directory opened with the flag set is migrated (live chunks rewritten
  /// into the first segment).
  bool log_structured = false;

  /// Seal the active segment at the next batch boundary once it exceeds
  /// this size.
  size_t segment_target_bytes = 8u << 20;

  /// Compact once wasted bytes (superseded versions, tombstones, dead
  /// tails) exceed this fraction of the sealed-segment bytes...
  double compact_wasted_ratio = 0.35;

  /// ...and exceed this floor (don't churn tiny stores)...
  size_t compact_min_wasted_bytes = 128u << 10;

  /// ...or whenever more than this many sealed segments accumulate
  /// (bounds read amplification independent of the waste ratio).
  size_t compact_max_segments = 8;

  /// Run compaction on a background thread woken at batch boundaries.
  /// Off: call CompactIfNeeded() (or Compact()) explicitly.
  bool background_compaction = false;

  /// Test hook, called at named compaction stages: "rewrite" (tmp segment
  /// fully written), "rename" (tmp renamed to its final name), "manifest"
  /// (new MANIFEST swapped in, victims not yet unlinked). Returning true
  /// simulates a crash at that point: the pass is abandoned and the store
  /// stops touching disk (Close() skips its final flush), so a reopen sees
  /// exactly what a killed process would have left behind.
  std::function<bool(const std::string& stage)> compact_crash_hook;
};

struct MRBGStoreStats {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t io_reads = 0;     // Table 4 "# reads"
  uint64_t bytes_read = 0;   // Table 4 "rsize"
  uint64_t chunks_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t chunks_removed = 0;
  uint64_t tombstones_appended = 0;
  uint64_t compaction_passes = 0;
  uint64_t compaction_bytes_reclaimed = 0;
};

class MRBGStore {
 public:
  /// Open (or create) a store in directory `dir`.
  static StatusOr<std::unique_ptr<MRBGStore>> Open(
      const std::string& dir, const MRBGStoreOptions& options = {});

  ~MRBGStore();

  Status Close();

  // -- Query path -----------------------------------------------------------

  /// Announce the sorted list of keys the following Query() calls will
  /// request (the shuffle phase sorts K2s, so the engine knows this list;
  /// Algorithm 1 input L). Resets window state.
  Status PrepareQueries(std::vector<std::string> sorted_keys);

  /// Retrieve the latest chunk for `key`. Keys must be requested in
  /// PrepareQueries order. Returns NotFound if the key has no live chunk.
  StatusOr<Chunk> Query(const std::string& key);

  bool Contains(const std::string& key) const;
  size_t num_chunks() const;
  size_t num_batches() const;

  /// Iterate all live chunks in key order.
  Status ForEachChunk(const std::function<Status(const Chunk&)>& fn);

  // -- Write path -----------------------------------------------------------

  /// Append a new version of a chunk to the open batch and point the index
  /// at it. Chunks should be appended in K2-sorted order within a batch
  /// (the shuffle guarantees this for the engine).
  Status AppendChunk(const Chunk& chunk);

  /// Delete a chunk: log-structured stores append a zero-size tombstone
  /// frame (the delete survives an index rebuild by scan); raw stores drop
  /// the index entry and the bytes become garbage.
  Status RemoveChunk(const std::string& key);

  /// Close the open batch: flush the append buffer, record the batch
  /// boundary and (by default) persist the index (raw: mrbg.idx;
  /// log-structured: the MANIFEST). Iterative jobs may defer persistence
  /// to the end of the job (`persist_index = false`) and call
  /// PersistIndex() once — checkpoints persist explicitly. Log-structured
  /// stores also rotate an over-target active segment here and kick the
  /// background compactor when the waste policy triggers.
  Status FinishBatch(bool persist_index = true);

  /// Write the in-memory index (raw) / segment MANIFEST (log-structured)
  /// to disk.
  Status PersistIndex();

  /// Merge one delta group with the preserved chunk (index nested loop join
  /// step of §3.4): loads the old chunk (if any), applies deletions and
  /// upserts, appends the merged result (or removes it if empty) and
  /// returns it in *merged. Must be called in sorted-K2 order after
  /// PrepareQueries with the same key list.
  Status MergeGroup(const std::string& k2, const std::vector<DeltaEdge>& deltas,
                    Chunk* merged);

  /// Full reconstruction: rewrite the store with only live chunks in key
  /// order as a single batch (paper: "The MRBGraph file is reconstructed
  /// off-line when the worker is idle"). Log-structured stores compact
  /// every segment into one fresh segment.
  Status Compact();

  /// Log-structured: run one compaction pass now if the waste policy
  /// thresholds are crossed (no-op otherwise, and in raw mode).
  Status CompactIfNeeded();

  /// Block until the background compactor is idle (no requested or
  /// in-flight pass). No-op without background compaction.
  void WaitForCompaction();

  // -- Snapshots / recovery -------------------------------------------------

  /// Hard-link a self-consistent frozen image of the store into `dst_dir`
  /// (created if needed): the data file(s) plus an index/MANIFEST that
  /// references exactly the linked bytes. Safe concurrently with appends
  /// and background compaction — the image is cut under the store lock,
  /// and links keep dropped segments alive for the snapshot. Appends the
  /// created paths to *files when non-null. This is the pipeline's epoch
  /// commit path.
  Status SnapshotInto(const std::string& dst_dir,
                      std::vector<std::string>* files = nullptr);

  /// The consistent on-disk file set of a closed store directory (for
  /// snapshotting/checkpointing without opening it): MANIFEST + its
  /// segments, or mrbg.dat + mrbg.idx. Empty if nothing durable exists.
  static StatusOr<std::vector<std::string>> ListStoreFiles(
      const std::string& dir);

  /// Re-load index and reopen files after an external restore (fault
  /// recovery path).
  Status Reload();

  // -- Introspection --------------------------------------------------------

  /// By value: the background compactor updates stats under the store lock.
  MRBGStoreStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lk(mu_);
    stats_ = MRBGStoreStats{};
  }
  /// Logical on-disk footprint (all segments / mrbg.dat, incl. unflushed
  /// appends).
  uint64_t file_bytes() const;
  /// Bytes of live (indexed) chunk versions.
  uint64_t live_bytes() const;
  /// Bytes of superseded versions, tombstones and dead tails.
  uint64_t wasted_bytes() const;
  /// Sealed + active segment files (raw mode: 1 if any data).
  size_t num_segments() const;
  bool log_structured() const { return log_structured_; }
  const std::string& dir() const { return dir_; }

  /// Raw-layout paths (exposed for checkpointing; meaningless once a store
  /// is log-structured — use ListStoreFiles/SnapshotInto there).
  std::string data_path() const;
  std::string index_path() const;

 private:
  MRBGStore(std::string dir, const MRBGStoreOptions& options)
      : dir_(std::move(dir)), options_(options) {}

  struct Window {
    uint64_t start = 0;
    uint64_t end = 0;  // exclusive; == start means empty
    std::string buf;
  };

  /// One segment file of the log-structured layout. `length` is the
  /// committed (scannable) byte count — a restored segment's physical file
  /// may be longer (a dead tail grown through a hard link after the
  /// snapshot), and those bytes are never read.
  struct Segment {
    uint64_t id = 0;
    uint64_t length = 0;
    std::shared_ptr<RandomAccessFile> reader;  // lazily opened
  };

  Status OpenFiles();
  Status OpenRaw();
  Status OpenLogStructured();
  Status MigrateRawToLogStructuredLocked();
  Status ScanSegmentLocked(size_t pos);
  Status FlushAppendBufferLocked();
  Status EnsureReaderLocked();
  Status RotateActiveLocked();
  Status WriteManifestLocked();
  Status CloseLocked();
  Status FinishBatchLocked(bool persist_index);
  Status PersistIndexLocked();
  Status AppendChunkLocked(const Chunk& chunk);
  Status RemoveChunkLocked(const std::string& key);
  StatusOr<Chunk> QueryLocked(const std::string& key);
  Status ForEachChunkLocked(const std::function<Status(const Chunk&)>& fn);
  Status CompactRawLocked();

  /// Waste policy check (log-structured).
  bool ShouldCompactLocked() const;
  /// One compaction pass over the current sealed segments: rewrite live
  /// chunks into a fresh segment (lock dropped during the rewrite), then
  /// swap index + MANIFEST under the lock and unlink the victims.
  /// `all` additionally seals the active segment first so the result is a
  /// single segment (Compact() semantics).
  Status CompactPass(bool all);
  void RequestCompactionLocked();
  void CompactorMain();
  void StartCompactor();
  void StopCompactor();

  Segment* FindSegmentLocked(uint64_t id);
  std::string SegmentPath(uint64_t id) const;
  std::string ManifestPath() const;
  uint64_t active_id_locked() const { return segments_.back().id; }
  /// Flushed end of the segment holding `loc` (reads never pass it).
  uint64_t SegmentFlushedEndLocked(const ChunkLocation& loc) const;

  /// Read [offset, offset+length) through the window machinery for a chunk
  /// in `batch`; returns a view valid until the next window load.
  StatusOr<std::string_view> ReadChunkBytesLocked(const ChunkLocation& loc);
  /// Compute the dynamic window size per Algorithm 1 starting at query
  /// cursor position `qpos`.
  uint64_t DynamicWindowEndLocked(const ChunkLocation& loc, size_t qpos) const;
  uint32_t open_batch_id_locked() const {
    return static_cast<uint32_t>(index_.batches().size());
  }

  std::string dir_;
  MRBGStoreOptions options_;
  bool log_structured_ = false;

  /// Guards everything below. Held by every public entry point; the
  /// background compactor holds it only for its short install phase, so
  /// queries/appends overlap the expensive segment rewrite.
  mutable std::mutex mu_;

  ChunkIndex index_;
  std::unique_ptr<WritableFile> writer_;  // raw file / active segment
  std::unique_ptr<RandomAccessFile> reader_;  // raw-mode reader
  bool reader_stale_ = true;
  std::string append_buf_;
  /// Raw: logical mrbg.dat size incl. unflushed buffer. Log-structured:
  /// logical active-segment size incl. unflushed buffer.
  uint64_t file_end_ = 0;

  /// Log-structured state. segments_ is the logical scan order; back() is
  /// the active (appendable) segment, everything before it is sealed and
  /// immutable.
  std::vector<Segment> segments_;
  uint64_t next_segment_id_ = 1;
  uint64_t batch_start_ = 0;  // active-segment offset of the open batch
  /// Incremental byte accounting, so the waste policy check is O(1):
  /// live_bytes_ counts all indexed chunk versions, live_active_bytes_ the
  /// subset living in the active segment, sealed_bytes_ the committed
  /// lengths of all sealed segments. Sealed waste (the only kind a pass
  /// can reclaim) = sealed_bytes_ - (live_bytes_ - live_active_bytes_).
  uint64_t live_bytes_ = 0;
  uint64_t live_active_bytes_ = 0;
  uint64_t sealed_bytes_ = 0;
  /// Set when the crash hook fired: disk must stay exactly as the
  /// abandoned pass left it, so Close() skips its final flush.
  bool crashed_ = false;

  // Background compactor.
  std::thread compactor_;
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool compact_requested_ = false;
  bool compact_running_ = false;
  bool compact_stop_ = false;

  // Tail cache (see MRBGStoreOptions::tail_cache_bytes): a retained copy
  // of the most recently flushed bytes of the raw file / active segment.
  // The live region is tail_buf_[tail_dead_..end), covering file offsets
  // [tail_start_, tail_start_ + live size); eviction just grows the dead
  // prefix, and the buffer is compacted only when the dead prefix exceeds
  // the cache budget (amortized, no per-flush memmove).
  std::string tail_buf_;
  size_t tail_dead_ = 0;
  uint64_t tail_start_ = 0;

  std::vector<std::string> query_keys_;  // L, sorted
  size_t query_cursor_ = 0;
  /// Keyed by (segment << 32) | batch — offsets are segment-relative in
  /// the log-structured layout, so windows must never be shared across
  /// segments (raw mode: segment 0 → plain batch id; single-window mode:
  /// (segment << 32); index-only scratch: ~0ull).
  std::map<uint64_t, Window> windows_;

  MRBGStoreStats stats_;
};

}  // namespace i2mr

#endif  // I2MR_MRBG_MRBG_STORE_H_
