#include "mrbg/chunk.h"

#include <unordered_map>

#include "common/codec.h"
#include "common/hash.h"

namespace i2mr {
namespace {

constexpr uint32_t kChunkMagic = 0x4d524247;      // "MRBG"
constexpr uint32_t kTombstoneMagic = 0x4d524254;  // "MRBT"

uint32_t PayloadChecksum(std::string_view payload) {
  return static_cast<uint32_t>(Hash64(payload.data(), payload.size()));
}

}  // namespace

uint32_t EncodedChunkLength(const Chunk& chunk) {
  uint32_t len = 4 + 4 + 4;                     // magic + payload_len + crc
  len += 4 + static_cast<uint32_t>(chunk.key.size());  // key
  len += 4;                                      // count
  for (const auto& e : chunk.entries) {
    len += 8 + 4 + static_cast<uint32_t>(e.v2.size());
  }
  return len;
}

uint32_t EncodeChunk(const Chunk& chunk, std::string* out) {
  size_t start = out->size();
  std::string payload;
  PutLengthPrefixed(&payload, chunk.key);
  PutFixed32(&payload, static_cast<uint32_t>(chunk.entries.size()));
  for (const auto& e : chunk.entries) {
    PutFixed64(&payload, e.mk);
    PutLengthPrefixed(&payload, e.v2);
  }
  PutFixed32(out, kChunkMagic);
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  PutFixed32(out, PayloadChecksum(payload));
  return static_cast<uint32_t>(out->size() - start);
}

Status DecodeChunk(std::string_view data, Chunk* chunk) {
  Decoder dec(data);
  uint32_t magic, payload_len;
  if (!dec.GetFixed32(&magic) || magic != kChunkMagic) {
    return Status::Corruption("bad chunk magic");
  }
  if (!dec.GetFixed32(&payload_len) || dec.remaining() < payload_len + 4) {
    return Status::Corruption("truncated chunk");
  }
  std::string_view payload(data.data() + 8, payload_len);
  Decoder body(payload);
  chunk->entries.clear();
  if (!body.GetLengthPrefixed(&chunk->key)) {
    return Status::Corruption("bad chunk key");
  }
  uint32_t count;
  if (!body.GetFixed32(&count)) return Status::Corruption("bad chunk count");
  chunk->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ChunkEntry e;
    if (!body.GetFixed64(&e.mk) || !body.GetLengthPrefixed(&e.v2)) {
      return Status::Corruption("bad chunk entry");
    }
    chunk->entries.push_back(std::move(e));
  }
  if (!body.done()) return Status::Corruption("chunk payload trailing bytes");
  Decoder crc_dec(data.data() + 8 + payload_len, 4);
  uint32_t crc;
  crc_dec.GetFixed32(&crc);
  if (crc != PayloadChecksum(payload)) {
    return Status::Corruption("chunk checksum mismatch for key " + chunk->key);
  }
  return Status::OK();
}

uint32_t EncodeTombstone(const std::string& key, std::string* out) {
  size_t start = out->size();
  std::string payload;
  PutLengthPrefixed(&payload, key);
  PutFixed32(out, kTombstoneMagic);
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  PutFixed32(out, PayloadChecksum(payload));
  return static_cast<uint32_t>(out->size() - start);
}

Status ScanFrame(std::string_view data, ScannedFrame* frame) {
  if (data.empty()) return Status::NotFound("end of log");
  Decoder dec(data);
  uint32_t magic, payload_len;
  if (!dec.GetFixed32(&magic) ||
      (magic != kChunkMagic && magic != kTombstoneMagic)) {
    return Status::Corruption("bad frame magic");
  }
  if (!dec.GetFixed32(&payload_len) || dec.remaining() < payload_len + 4) {
    return Status::Corruption("truncated frame");
  }
  std::string_view payload(data.data() + 8, payload_len);
  Decoder crc_dec(data.data() + 8 + payload_len, 4);
  uint32_t crc;
  crc_dec.GetFixed32(&crc);
  if (crc != PayloadChecksum(payload)) {
    return Status::Corruption("frame checksum mismatch");
  }
  Decoder body(payload);
  if (!body.GetLengthPrefixed(&frame->key)) {
    return Status::Corruption("bad frame key");
  }
  frame->tombstone = magic == kTombstoneMagic;
  frame->length = 8 + payload_len + 4;
  return Status::OK();
}

void ApplyDeltaToChunk(const std::vector<DeltaEdge>& deltas, Chunk* chunk) {
  // Index existing entries by MK.
  std::unordered_map<uint64_t, size_t> by_mk;
  by_mk.reserve(chunk->entries.size());
  for (size_t i = 0; i < chunk->entries.size(); ++i) {
    by_mk[chunk->entries[i].mk] = i;
  }
  std::vector<bool> dead(chunk->entries.size(), false);
  for (const auto& d : deltas) {
    auto it = by_mk.find(d.mk);
    if (d.deleted) {
      if (it != by_mk.end()) dead[it->second] = true;
    } else if (it != by_mk.end()) {
      chunk->entries[it->second].v2 = d.v2;  // update in place
      dead[it->second] = false;              // resurrect if deleted earlier
    } else {
      chunk->entries.push_back(ChunkEntry{d.mk, d.v2});
      dead.push_back(false);
      by_mk[d.mk] = chunk->entries.size() - 1;
    }
  }
  // Compact out deleted entries, preserving order.
  size_t w = 0;
  for (size_t i = 0; i < chunk->entries.size(); ++i) {
    if (dead[i]) continue;
    if (w != i) chunk->entries[w] = std::move(chunk->entries[i]);
    ++w;
  }
  chunk->entries.resize(w);
}

}  // namespace i2mr
