// MRBGraph chunk format (paper §3.4, Fig. 4). A chunk holds all preserved
// intermediate edges (K2, MK, V2) of one Reduce instance, stored
// contiguously:
//
//   [u32 magic][u32 payload_len][payload][u32 crc32-of-payload]
//   payload = [u32 key_len][key][u32 count] ([u64 mk][u32 vlen][v2])*
//
// Chunks are the unit of read/write/merge in the MRBG-Store.
#ifndef I2MR_MRBG_CHUNK_H_
#define I2MR_MRBG_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace i2mr {

/// One MRBGraph edge value within a chunk: the source Map instance (MK) and
/// the intermediate value V2 it contributed to this Reduce instance.
struct ChunkEntry {
  uint64_t mk = 0;
  std::string v2;

  friend bool operator==(const ChunkEntry& a, const ChunkEntry& b) {
    return a.mk == b.mk && a.v2 == b.v2;
  }
};

/// All preserved edges of one Reduce instance (identified by K2).
struct Chunk {
  std::string key;  // K2
  std::vector<ChunkEntry> entries;

  bool empty() const { return entries.empty(); }
};

/// A change to the MRBGraph produced by incremental Map computation:
/// an edge insertion/update (deleted=false) or an edge deletion ('-').
struct DeltaEdge {
  std::string k2;
  uint64_t mk = 0;
  std::string v2;
  bool deleted = false;
};

/// Serialize `chunk` (appends to *out). Returns the encoded length.
uint32_t EncodeChunk(const Chunk& chunk, std::string* out);

/// Parse one chunk from `data` (which must start at a chunk boundary and
/// contain the complete chunk). Verifies magic and checksum.
Status DecodeChunk(std::string_view data, Chunk* chunk);

/// Byte length of the encoding of `chunk` without encoding it.
uint32_t EncodedChunkLength(const Chunk& chunk);

/// Serialize a tombstone frame for `key` (appends to *out): same CRC
/// framing as a chunk but with the tombstone magic and a zero-size value
/// payload (just the key). The log-structured store appends one to delete
/// a chunk durably; a sequential scan replays it as an index erase.
/// Returns the encoded length.
uint32_t EncodeTombstone(const std::string& key, std::string* out);

/// One frame of the append-only chunk log, parsed in place by the
/// log-structured store's open-time scan: either a live chunk version
/// (`tombstone == false`; the `length`-byte prefix decodes with
/// DecodeChunk) or a zero-size tombstone deleting `key`.
struct ScannedFrame {
  std::string key;
  uint32_t length = 0;  // total frame bytes (header + payload + crc)
  bool tombstone = false;
};

/// Parse the frame starting at data[0]. Verifies magic, bounds and
/// checksum. Returns NotFound on empty input (clean end of scan),
/// Corruption on a torn or garbled frame.
Status ScanFrame(std::string_view data, ScannedFrame* frame);

/// Apply a group of delta edges (all with k2 == chunk->key) to a chunk:
/// deletions remove the matching MK; insertions upsert by MK (paper §3.3:
/// "checks duplicates, inserts if no duplicate exists, else updates").
void ApplyDeltaToChunk(const std::vector<DeltaEdge>& deltas, Chunk* chunk);

}  // namespace i2mr

#endif  // I2MR_MRBG_CHUNK_H_
