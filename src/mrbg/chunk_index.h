// Hash index over the MRBGraph file: K2 -> latest chunk location (paper
// §3.4: "we employ a hash-based implementation for the index... preloaded
// into memory before Reduce computation"). Persisted alongside the data
// file, together with the batch boundaries (§5.2).
#ifndef I2MR_MRBG_CHUNK_INDEX_H_
#define I2MR_MRBG_CHUNK_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace i2mr {

/// Location of the latest version of a chunk. In the raw single-file
/// layout `segment` is always 0 and `offset` is a mrbg.dat offset; in the
/// log-structured layout `segment` is a segment file id and `offset` is
/// relative to that segment.
struct ChunkLocation {
  uint64_t offset = 0;
  uint32_t length = 0;
  uint32_t batch = 0;    // which sorted batch the chunk belongs to
  uint64_t segment = 0;  // which segment file holds it (0 in raw mode)

  friend bool operator==(const ChunkLocation& a, const ChunkLocation& b) {
    return a.offset == b.offset && a.length == b.length && a.batch == b.batch &&
           a.segment == b.segment;
  }
};

/// Byte range of one sorted batch of chunks (one merge epoch / iteration),
/// within `segment` (raw mode: segment 0, whole-file offsets).
struct BatchInfo {
  uint64_t start = 0;
  uint64_t end = 0;
  uint64_t segment = 0;
};

class ChunkIndex {
 public:
  /// Point lookup. Returns nullptr if the key has no live chunk.
  const ChunkLocation* Lookup(const std::string& key) const;

  void Put(const std::string& key, const ChunkLocation& loc);
  void Erase(const std::string& key);
  void Clear();

  size_t size() const { return map_.size(); }
  bool Contains(const std::string& key) const { return map_.count(key) > 0; }

  const std::vector<BatchInfo>& batches() const { return batches_; }
  void AddBatch(const BatchInfo& b) { batches_.push_back(b); }
  void ClearBatches() { batches_.clear(); }

  /// Iterate all (key, location) pairs in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, loc] : map_) fn(key, loc);
  }

  /// Iterate with mutable locations (compaction repoints entries in place).
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (auto& [key, loc] : map_) fn(key, loc);
  }

  void SetBatches(std::vector<BatchInfo> batches) {
    batches_ = std::move(batches);
  }

  /// Persist to / load from an index file.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  std::unordered_map<std::string, ChunkLocation> map_;
  std::vector<BatchInfo> batches_;
};

}  // namespace i2mr

#endif  // I2MR_MRBG_CHUNK_INDEX_H_
