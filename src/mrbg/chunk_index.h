// Hash index over the MRBGraph file: K2 -> latest chunk location (paper
// §3.4: "we employ a hash-based implementation for the index... preloaded
// into memory before Reduce computation"). Persisted alongside the data
// file, together with the batch boundaries (§5.2).
#ifndef I2MR_MRBG_CHUNK_INDEX_H_
#define I2MR_MRBG_CHUNK_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "io/file.h"

namespace i2mr {

/// Location of the latest version of a chunk. In the raw single-file
/// layout `segment` is always 0 and `offset` is a mrbg.dat offset; in the
/// log-structured layout `segment` is a segment file id and `offset` is
/// relative to that segment.
struct ChunkLocation {
  uint64_t offset = 0;
  uint32_t length = 0;
  uint32_t batch = 0;    // which sorted batch the chunk belongs to
  uint64_t segment = 0;  // which segment file holds it (0 in raw mode)

  friend bool operator==(const ChunkLocation& a, const ChunkLocation& b) {
    return a.offset == b.offset && a.length == b.length && a.batch == b.batch &&
           a.segment == b.segment;
  }
};

/// Byte range of one sorted batch of chunks (one merge epoch / iteration),
/// within `segment` (raw mode: segment 0, whole-file offsets).
struct BatchInfo {
  uint64_t start = 0;
  uint64_t end = 0;
  uint64_t segment = 0;
};

class ChunkIndex {
 public:
  /// Point lookup. Returns nullptr if the key has no live chunk.
  const ChunkLocation* Lookup(const std::string& key) const;

  void Put(const std::string& key, const ChunkLocation& loc);
  void Erase(const std::string& key);
  void Clear();

  size_t size() const { return map_.size(); }
  bool Contains(const std::string& key) const { return map_.count(key) > 0; }

  const std::vector<BatchInfo>& batches() const { return batches_; }
  void AddBatch(const BatchInfo& b) { batches_.push_back(b); }
  void ClearBatches() { batches_.clear(); }

  /// Iterate all (key, location) pairs in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, loc] : map_) fn(key, loc);
  }

  /// Iterate with mutable locations (compaction repoints entries in place).
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (auto& [key, loc] : map_) fn(key, loc);
  }

  void SetBatches(std::vector<BatchInfo> batches) {
    batches_ = std::move(batches);
  }

  /// Persist to / load from an index file.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  std::unordered_map<std::string, ChunkLocation> map_;
  std::vector<BatchInfo> batches_;
};

/// Address of one content chunk in a ContentChunkStore: identity is
/// (hash, length, crc) — the content — and (segment, offset) says where
/// the bytes live.
struct ContentChunkRef {
  uint64_t hash = 0;
  uint32_t length = 0;
  uint32_t crc = 0;
  uint64_t segment = 0;
  uint64_t offset = 0;  // of the payload, past the frame header
};

/// Content-addressed chunk store + index, the transfer substrate of an
/// elastic reshard (serving/reshard.h). Donor state is cut into chunks and
/// Put() here; a destination that needs a chunk whose (hash, length, crc)
/// the store already holds — from a previous reshard attempt that crashed,
/// or from another destination's identical slice — reuses the stored bytes
/// instead of a second copy. Attach() scans the segment files under the
/// store dir, so reuse survives process restarts.
///
/// On-disk layout: append-only segment files `chunks-NNNNNN.dat` of frames
///   [u64 content-hash][u32 payload-len][u32 payload-crc][payload]
/// A torn tail frame (crash mid-append) is detected by length/CRC at
/// Attach() and truncated from the index (the file keeps the garbage tail;
/// the next Put() rotates to a fresh segment).
///
/// Single writer (the reshard coordinator); concurrent readers are fine
/// once Put() calls stop.
class ContentChunkStore {
 public:
  explicit ContentChunkStore(uint64_t segment_max_bytes = 8ull << 20);
  ~ContentChunkStore();
  ContentChunkStore(const ContentChunkStore&) = delete;
  ContentChunkStore& operator=(const ContentChunkStore&) = delete;

  /// Create (or reopen) the store under `dir` and index every intact
  /// frame already present.
  Status Attach(const std::string& dir);

  /// Store `payload` (or find it already stored). Sets *reused (may be
  /// null) to true when an identical chunk was already present and no
  /// bytes were written.
  StatusOr<ContentChunkRef> Put(std::string_view payload, bool* reused);

  /// Read a chunk's payload back, verifying length + CRC.
  StatusOr<std::string> Read(const ContentChunkRef& ref) const;

  /// Flush (and with sync=true fsync) the open segment.
  Status Flush(bool sync);

  size_t chunk_count() const { return index_.size(); }
  uint64_t bytes_stored() const { return bytes_stored_; }

 private:
  std::string SegmentPath(uint64_t segment) const;
  Status RotateLocked();

  const uint64_t segment_max_bytes_;
  std::string dir_;
  uint64_t open_segment_ = 0;
  std::unique_ptr<WritableFile> writer_;
  /// content-hash -> every distinct chunk with that hash (collisions keep
  /// both; identity requires length + crc to also match).
  std::unordered_multimap<uint64_t, ContentChunkRef> index_;
  uint64_t bytes_stored_ = 0;
};

}  // namespace i2mr

#endif  // I2MR_MRBG_CHUNK_INDEX_H_
