#include "mrbg/chunk_index.h"

#include <algorithm>
#include <cstdio>

#include "common/codec.h"
#include "common/hash.h"
#include "io/env.h"

namespace i2mr {
namespace {

constexpr uint32_t kIndexMagic = 0x49445832;  // "IDX2"

}  // namespace

const ChunkLocation* ChunkIndex::Lookup(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void ChunkIndex::Put(const std::string& key, const ChunkLocation& loc) {
  map_[key] = loc;
}

void ChunkIndex::Erase(const std::string& key) { map_.erase(key); }

void ChunkIndex::Clear() {
  map_.clear();
  batches_.clear();
}

Status ChunkIndex::Save(const std::string& path) const {
  std::string buf;
  PutFixed32(&buf, kIndexMagic);
  PutFixed32(&buf, static_cast<uint32_t>(batches_.size()));
  for (const auto& b : batches_) {
    PutFixed64(&buf, b.start);
    PutFixed64(&buf, b.end);
    PutFixed64(&buf, b.segment);
  }
  PutFixed64(&buf, map_.size());
  for (const auto& [key, loc] : map_) {
    PutLengthPrefixed(&buf, key);
    PutFixed64(&buf, loc.offset);
    PutFixed32(&buf, loc.length);
    PutFixed32(&buf, loc.batch);
    PutFixed64(&buf, loc.segment);
  }
  std::string tmp = path + ".tmp";
  I2MR_RETURN_IF_ERROR(WriteStringToFile(tmp, buf));
  return RenameFile(tmp, path);
}

Status ChunkIndex::Load(const std::string& path) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  Decoder dec(*data);
  uint32_t magic;
  if (!dec.GetFixed32(&magic) || magic != kIndexMagic) {
    return Status::Corruption("bad index magic: " + path);
  }
  Clear();
  uint32_t num_batches;
  if (!dec.GetFixed32(&num_batches)) return Status::Corruption("bad index");
  for (uint32_t i = 0; i < num_batches; ++i) {
    BatchInfo b;
    if (!dec.GetFixed64(&b.start) || !dec.GetFixed64(&b.end) ||
        !dec.GetFixed64(&b.segment)) {
      return Status::Corruption("bad batch info");
    }
    batches_.push_back(b);
  }
  uint64_t n;
  if (!dec.GetFixed64(&n)) return Status::Corruption("bad index size");
  map_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string key;
    ChunkLocation loc;
    if (!dec.GetLengthPrefixed(&key) || !dec.GetFixed64(&loc.offset) ||
        !dec.GetFixed32(&loc.length) || !dec.GetFixed32(&loc.batch) ||
        !dec.GetFixed64(&loc.segment)) {
      return Status::Corruption("bad index entry");
    }
    map_[std::move(key)] = loc;
  }
  if (!dec.done()) return Status::Corruption("index trailing bytes");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ContentChunkStore
// ---------------------------------------------------------------------------

namespace {

constexpr size_t kContentFrameHeader = 8 + 4 + 4;  // hash, len, crc

std::string ContentSegmentName(uint64_t segment) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "chunks-%06llu.dat",
                static_cast<unsigned long long>(segment));
  return buf;
}

}  // namespace

ContentChunkStore::ContentChunkStore(uint64_t segment_max_bytes)
    : segment_max_bytes_(segment_max_bytes) {}

ContentChunkStore::~ContentChunkStore() {
  if (writer_ != nullptr) {
    Status st = writer_->Close();
    (void)st;  // best-effort: destruction can't propagate
  }
}

std::string ContentChunkStore::SegmentPath(uint64_t segment) const {
  return JoinPath(dir_, ContentSegmentName(segment));
}

Status ContentChunkStore::Attach(const std::string& dir) {
  dir_ = dir;
  I2MR_RETURN_IF_ERROR(CreateDirs(dir));
  index_.clear();
  bytes_stored_ = 0;
  open_segment_ = 0;
  writer_ = nullptr;

  auto files = ListFiles(dir);
  if (!files.ok()) return files.status();
  uint64_t max_segment = 0;
  bool any = false;
  for (const auto& path : *files) {
    size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    unsigned long long seg = 0;
    if (std::sscanf(base.c_str(), "chunks-%06llu.dat", &seg) != 1) continue;
    any = true;
    max_segment = std::max<uint64_t>(max_segment, seg);
    auto data = ReadFileToString(path);
    if (!data.ok()) return data.status();
    // Frame scan; a torn tail (crash mid-append) simply ends the segment —
    // every intact frame before it is reusable.
    size_t off = 0;
    while (off + kContentFrameHeader <= data->size()) {
      uint64_t hash = DecodeFixed64(data->data() + off);
      uint32_t len = DecodeFixed32(data->data() + off + 8);
      uint32_t crc = DecodeFixed32(data->data() + off + 12);
      size_t payload_off = off + kContentFrameHeader;
      if (payload_off + len > data->size()) break;
      std::string_view payload(data->data() + payload_off, len);
      if (Crc32(payload) != crc || Hash64(payload) != hash) break;
      index_.emplace(hash, ContentChunkRef{hash, len, crc, seg,
                                           static_cast<uint64_t>(payload_off)});
      bytes_stored_ += len;
      off = payload_off + len;
    }
  }
  // Never append to a pre-existing segment: it may carry a torn tail, and
  // indexed offsets into it must stay valid. New writes open a fresh file.
  open_segment_ = any ? max_segment + 1 : 0;
  return Status::OK();
}

Status ContentChunkStore::RotateLocked() {
  if (writer_ != nullptr) {
    I2MR_RETURN_IF_ERROR(writer_->Close());
    writer_ = nullptr;
    ++open_segment_;
  }
  auto file = WritableFile::Create(SegmentPath(open_segment_));
  if (!file.ok()) return file.status();
  writer_ = std::move(file.value());
  return Status::OK();
}

StatusOr<ContentChunkRef> ContentChunkStore::Put(std::string_view payload,
                                                 bool* reused) {
  if (dir_.empty()) return Status::FailedPrecondition("store not attached");
  const uint64_t hash = Hash64(payload);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload);
  auto [it, end] = index_.equal_range(hash);
  for (; it != end; ++it) {
    if (it->second.length == len && it->second.crc == crc) {
      if (reused != nullptr) *reused = true;
      return it->second;
    }
  }
  if (reused != nullptr) *reused = false;
  if (writer_ == nullptr || writer_->offset() >= segment_max_bytes_) {
    I2MR_RETURN_IF_ERROR(RotateLocked());
  }
  std::string header;
  PutFixed64(&header, hash);
  PutFixed32(&header, len);
  PutFixed32(&header, crc);
  const uint64_t payload_off = writer_->offset() + header.size();
  I2MR_RETURN_IF_ERROR(writer_->Append(header));
  I2MR_RETURN_IF_ERROR(writer_->Append(payload));
  ContentChunkRef ref{hash, len, crc, open_segment_, payload_off};
  index_.emplace(hash, ref);
  bytes_stored_ += len;
  return ref;
}

StatusOr<std::string> ContentChunkStore::Read(const ContentChunkRef& ref) const {
  // The chunk may sit in the open segment's userspace buffer.
  if (writer_ != nullptr) {
    I2MR_RETURN_IF_ERROR(writer_->Flush());
  }
  auto file = RandomAccessFile::Open(SegmentPath(ref.segment));
  if (!file.ok()) return file.status();
  std::string payload;
  I2MR_RETURN_IF_ERROR((*file)->Read(ref.offset, ref.length, &payload));
  if (payload.size() != ref.length || Crc32(payload) != ref.crc ||
      Hash64(payload) != ref.hash) {
    return Status::Corruption("content chunk mismatch in " +
                              SegmentPath(ref.segment));
  }
  return payload;
}

Status ContentChunkStore::Flush(bool sync) {
  if (writer_ == nullptr) return Status::OK();
  I2MR_RETURN_IF_ERROR(sync ? writer_->Sync() : writer_->Flush());
  if (sync) I2MR_RETURN_IF_ERROR(SyncDir(dir_));
  return Status::OK();
}

}  // namespace i2mr
