#include "mrbg/chunk_index.h"

#include "common/codec.h"
#include "io/env.h"

namespace i2mr {
namespace {

constexpr uint32_t kIndexMagic = 0x49445832;  // "IDX2"

}  // namespace

const ChunkLocation* ChunkIndex::Lookup(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void ChunkIndex::Put(const std::string& key, const ChunkLocation& loc) {
  map_[key] = loc;
}

void ChunkIndex::Erase(const std::string& key) { map_.erase(key); }

void ChunkIndex::Clear() {
  map_.clear();
  batches_.clear();
}

Status ChunkIndex::Save(const std::string& path) const {
  std::string buf;
  PutFixed32(&buf, kIndexMagic);
  PutFixed32(&buf, static_cast<uint32_t>(batches_.size()));
  for (const auto& b : batches_) {
    PutFixed64(&buf, b.start);
    PutFixed64(&buf, b.end);
    PutFixed64(&buf, b.segment);
  }
  PutFixed64(&buf, map_.size());
  for (const auto& [key, loc] : map_) {
    PutLengthPrefixed(&buf, key);
    PutFixed64(&buf, loc.offset);
    PutFixed32(&buf, loc.length);
    PutFixed32(&buf, loc.batch);
    PutFixed64(&buf, loc.segment);
  }
  std::string tmp = path + ".tmp";
  I2MR_RETURN_IF_ERROR(WriteStringToFile(tmp, buf));
  return RenameFile(tmp, path);
}

Status ChunkIndex::Load(const std::string& path) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  Decoder dec(*data);
  uint32_t magic;
  if (!dec.GetFixed32(&magic) || magic != kIndexMagic) {
    return Status::Corruption("bad index magic: " + path);
  }
  Clear();
  uint32_t num_batches;
  if (!dec.GetFixed32(&num_batches)) return Status::Corruption("bad index");
  for (uint32_t i = 0; i < num_batches; ++i) {
    BatchInfo b;
    if (!dec.GetFixed64(&b.start) || !dec.GetFixed64(&b.end) ||
        !dec.GetFixed64(&b.segment)) {
      return Status::Corruption("bad batch info");
    }
    batches_.push_back(b);
  }
  uint64_t n;
  if (!dec.GetFixed64(&n)) return Status::Corruption("bad index size");
  map_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string key;
    ChunkLocation loc;
    if (!dec.GetLengthPrefixed(&key) || !dec.GetFixed64(&loc.offset) ||
        !dec.GetFixed32(&loc.length) || !dec.GetFixed32(&loc.batch) ||
        !dec.GetFixed64(&loc.segment)) {
      return Status::Corruption("bad index entry");
    }
    map_[std::move(key)] = loc;
  }
  if (!dec.done()) return Status::Corruption("index trailing bytes");
  return Status::OK();
}

}  // namespace i2mr
