#include "mrbg/mrbg_store.h"

#include <algorithm>

#include "common/logging.h"
#include "io/env.h"

namespace i2mr {

const char* ReadModeName(ReadMode mode) {
  switch (mode) {
    case ReadMode::kIndexOnly: return "index-only";
    case ReadMode::kSingleFixedWindow: return "single-fix-window";
    case ReadMode::kMultiFixedWindow: return "multi-fix-window";
    case ReadMode::kMultiDynamicWindow: return "multi-dynamic-window";
  }
  return "?";
}

StatusOr<std::unique_ptr<MRBGStore>> MRBGStore::Open(
    const std::string& dir, const MRBGStoreOptions& options) {
  I2MR_RETURN_IF_ERROR(CreateDirs(dir));
  auto store = std::unique_ptr<MRBGStore>(new MRBGStore(dir, options));
  I2MR_RETURN_IF_ERROR(store->OpenFiles());
  return store;
}

MRBGStore::~MRBGStore() { Close(); }

std::string MRBGStore::data_path() const { return JoinPath(dir_, "mrbg.dat"); }
std::string MRBGStore::index_path() const { return JoinPath(dir_, "mrbg.idx"); }

Status MRBGStore::OpenFiles() {
  if (FileExists(index_path())) {
    I2MR_RETURN_IF_ERROR(index_.Load(index_path()));
  }
  if (FileExists(data_path())) {
    auto sz = FileSize(data_path());
    if (!sz.ok()) return sz.status();
    file_end_ = *sz;
  } else {
    file_end_ = 0;
  }
  auto w = WritableFile::Create(data_path(), /*append=*/true);
  if (!w.ok()) return w.status();
  writer_ = std::move(w.value());
  reader_.reset();
  reader_stale_ = true;
  return Status::OK();
}

Status MRBGStore::Close() {
  if (writer_ == nullptr) return Status::OK();
  uint64_t closed_end =
      index_.batches().empty() ? 0 : index_.batches().back().end;
  if (file_end_ > closed_end || !append_buf_.empty()) {
    I2MR_RETURN_IF_ERROR(FinishBatch());
  }
  Status st = writer_->Close();
  writer_.reset();
  reader_.reset();
  return st;
}

Status MRBGStore::Reload() {
  index_.Clear();
  append_buf_.clear();
  tail_buf_.clear();
  tail_dead_ = 0;
  tail_start_ = 0;
  windows_.clear();
  query_keys_.clear();
  query_cursor_ = 0;
  if (writer_ != nullptr) {
    I2MR_RETURN_IF_ERROR(writer_->Close());
    writer_.reset();
  }
  return OpenFiles();
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status MRBGStore::FlushAppendBuffer() {
  if (append_buf_.empty()) return Status::OK();
  I2MR_RETURN_IF_ERROR(writer_->Append(append_buf_));
  I2MR_RETURN_IF_ERROR(writer_->Flush());
  if (options_.tail_cache_bytes > 0) {
    // Keep a copy of the flushed bytes: the next iteration's merge loop
    // re-queries exactly the chunks this iteration appended.
    if (tail_buf_.size() == tail_dead_) {
      tail_buf_.clear();
      tail_dead_ = 0;
      tail_start_ = file_end_ - append_buf_.size();
    }
    tail_buf_.append(append_buf_);
    size_t live = tail_buf_.size() - tail_dead_;
    if (live > options_.tail_cache_bytes) {
      size_t drop = live - options_.tail_cache_bytes;
      tail_dead_ += drop;
      tail_start_ += drop;
    }
    if (tail_dead_ > options_.tail_cache_bytes) {
      // Compact only once the dead prefix outgrows the budget.
      tail_buf_.erase(0, tail_dead_);
      tail_dead_ = 0;
    }
  }
  append_buf_.clear();
  reader_stale_ = true;
  return Status::OK();
}

Status MRBGStore::AppendChunk(const Chunk& chunk) {
  uint64_t offset = file_end_;
  uint32_t len = EncodeChunk(chunk, &append_buf_);
  file_end_ += len;
  index_.Put(chunk.key, ChunkLocation{offset, len, open_batch_id()});
  ++stats_.chunks_appended;
  stats_.bytes_appended += len;
  if (append_buf_.size() >= options_.append_buffer_bytes) {
    return FlushAppendBuffer();
  }
  return Status::OK();
}

Status MRBGStore::RemoveChunk(const std::string& key) {
  if (index_.Contains(key)) {
    index_.Erase(key);
    ++stats_.chunks_removed;
  }
  return Status::OK();
}

Status MRBGStore::FinishBatch(bool persist_index) {
  I2MR_RETURN_IF_ERROR(FlushAppendBuffer());
  uint64_t start = index_.batches().empty() ? 0 : index_.batches().back().end;
  if (file_end_ > start) {
    index_.AddBatch(BatchInfo{start, file_end_});
  }
  if (!persist_index) return Status::OK();
  return PersistIndex();
}

Status MRBGStore::PersistIndex() { return index_.Save(index_path()); }

// ---------------------------------------------------------------------------
// Query path
// ---------------------------------------------------------------------------

Status MRBGStore::PrepareQueries(std::vector<std::string> sorted_keys) {
  query_keys_ = std::move(sorted_keys);
  query_cursor_ = 0;
  windows_.clear();
  return Status::OK();
}

Status MRBGStore::EnsureReader() {
  if (reader_ != nullptr && !reader_stale_) return Status::OK();
  auto r = RandomAccessFile::Open(data_path());
  if (!r.ok()) return r.status();
  reader_ = std::move(r.value());
  reader_stale_ = false;
  return Status::OK();
}

uint64_t MRBGStore::DynamicWindowEnd(const ChunkLocation& loc,
                                     size_t qpos) const {
  // Algorithm 1 (+ §5.2 multi-batch skip): grow the window over upcoming
  // queried chunks in the same batch while the gap between consecutive
  // chunks stays below T and the window fits in the read cache.
  uint64_t window_bytes = loc.length;
  uint64_t last_end = loc.offset + loc.length;
  for (size_t j = qpos + 1; j < query_keys_.size(); ++j) {
    const ChunkLocation* next = index_.Lookup(query_keys_[j]);
    if (next == nullptr) continue;          // key absent: no position
    if (next->batch != loc.batch) continue; // other batch: other window
    if (next->offset < last_end) continue;  // already covered
    uint64_t gap = next->offset - last_end;
    if (gap >= options_.gap_threshold_bytes) break;
    if (window_bytes + gap + next->length > options_.read_cache_bytes) break;
    window_bytes += gap + next->length;
    last_end = next->offset + next->length;
  }
  return last_end;
}

StatusOr<std::string_view> MRBGStore::ReadChunkBytes(const ChunkLocation& loc) {
  // Recently flushed? Serve from the retained tail copy, no I/O.
  size_t tail_live = tail_buf_.size() - tail_dead_;
  if (tail_live > 0 && loc.offset >= tail_start_ &&
      loc.offset + loc.length <= tail_start_ + tail_live) {
    ++stats_.cache_hits;
    return std::string_view(
        tail_buf_.data() + tail_dead_ + (loc.offset - tail_start_),
        loc.length);
  }

  I2MR_RETURN_IF_ERROR(EnsureReader());

  if (options_.read_mode == ReadMode::kIndexOnly) {
    Window& w = windows_[~0u];  // scratch window
    w.buf.clear();
    I2MR_RETURN_IF_ERROR(reader_->Read(loc.offset, loc.length, &w.buf));
    ++stats_.io_reads;
    stats_.bytes_read += w.buf.size();
    if (w.buf.size() < loc.length) {
      return Status::Corruption("short chunk read");
    }
    w.start = loc.offset;
    w.end = loc.offset + w.buf.size();
    return std::string_view(w.buf.data(), loc.length);
  }

  uint32_t wkey =
      options_.read_mode == ReadMode::kSingleFixedWindow ? 0u : loc.batch;
  Window& w = windows_[wkey];
  if (loc.offset >= w.start && loc.offset + loc.length <= w.end &&
      !w.buf.empty()) {
    ++stats_.cache_hits;
    return std::string_view(w.buf.data() + (loc.offset - w.start), loc.length);
  }

  // Miss: choose the read range.
  uint64_t end;
  switch (options_.read_mode) {
    case ReadMode::kSingleFixedWindow:
    case ReadMode::kMultiFixedWindow:
      end = loc.offset +
            std::max<uint64_t>(loc.length, options_.fixed_window_bytes);
      break;
    case ReadMode::kMultiDynamicWindow: {
      // Locate the query cursor position of this chunk's key to look ahead.
      end = DynamicWindowEnd(loc, query_cursor_);
      break;
    }
    default:
      end = loc.offset + loc.length;
  }
  // Never read past this batch (multi-window modes) or the flushed file.
  if (options_.read_mode != ReadMode::kSingleFixedWindow &&
      loc.batch < index_.batches().size()) {
    end = std::min<uint64_t>(end, index_.batches()[loc.batch].end);
  }
  uint64_t flushed_end = file_end_ - append_buf_.size();
  end = std::min<uint64_t>(end, flushed_end);
  end = std::max<uint64_t>(end, loc.offset + loc.length);

  I2MR_RETURN_IF_ERROR(
      reader_->Read(loc.offset, static_cast<size_t>(end - loc.offset), &w.buf));
  ++stats_.io_reads;
  stats_.bytes_read += w.buf.size();
  if (w.buf.size() < loc.length) {
    return Status::Corruption("short window read");
  }
  w.start = loc.offset;
  w.end = loc.offset + w.buf.size();
  return std::string_view(w.buf.data(), loc.length);
}

StatusOr<Chunk> MRBGStore::Query(const std::string& key) {
  ++stats_.queries;
  // Advance the cursor to this key's position in L (queries arrive in
  // PrepareQueries order; unknown keys fall back to standalone lookups).
  while (query_cursor_ < query_keys_.size() &&
         query_keys_[query_cursor_] < key) {
    ++query_cursor_;
  }

  const ChunkLocation* loc = index_.Lookup(key);
  if (loc == nullptr) return Status::NotFound("no chunk for key " + key);

  // Chunk still sitting (entirely or partly) in the append buffer?
  uint64_t flushed_end = file_end_ - append_buf_.size();
  if (loc->offset >= flushed_end) {
    std::string_view view(append_buf_.data() + (loc->offset - flushed_end),
                          loc->length);
    Chunk chunk;
    I2MR_RETURN_IF_ERROR(DecodeChunk(view, &chunk));
    ++stats_.cache_hits;
    return chunk;
  }

  auto bytes = ReadChunkBytes(*loc);
  if (!bytes.ok()) return bytes.status();
  Chunk chunk;
  I2MR_RETURN_IF_ERROR(DecodeChunk(*bytes, &chunk));
  if (chunk.key != key) {
    return Status::Corruption("index points to wrong chunk: wanted " + key +
                              " got " + chunk.key);
  }
  return chunk;
}

Status MRBGStore::MergeGroup(const std::string& k2,
                             const std::vector<DeltaEdge>& deltas,
                             Chunk* merged) {
  merged->key = k2;
  merged->entries.clear();
  auto existing = Query(k2);
  if (existing.ok()) {
    *merged = std::move(existing.value());
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  ApplyDeltaToChunk(deltas, merged);
  if (merged->empty()) {
    return RemoveChunk(k2);
  }
  return AppendChunk(*merged);
}

// ---------------------------------------------------------------------------
// Iteration / compaction
// ---------------------------------------------------------------------------

Status MRBGStore::ForEachChunk(const std::function<Status(const Chunk&)>& fn) {
  I2MR_RETURN_IF_ERROR(FlushAppendBuffer());
  I2MR_RETURN_IF_ERROR(EnsureReader());
  std::vector<std::pair<std::string, ChunkLocation>> entries;
  entries.reserve(index_.size());
  index_.ForEach([&](const std::string& key, const ChunkLocation& loc) {
    entries.emplace_back(key, loc);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string buf;
  for (const auto& [key, loc] : entries) {
    I2MR_RETURN_IF_ERROR(reader_->Read(loc.offset, loc.length, &buf));
    if (buf.size() < loc.length) return Status::Corruption("short read");
    Chunk chunk;
    I2MR_RETURN_IF_ERROR(DecodeChunk(buf, &chunk));
    I2MR_RETURN_IF_ERROR(fn(chunk));
  }
  return Status::OK();
}

Status MRBGStore::Compact() {
  I2MR_RETURN_IF_ERROR(FlushAppendBuffer());
  std::string tmp_path = data_path() + ".compact";
  auto w = WritableFile::Create(tmp_path);
  if (!w.ok()) return w.status();

  ChunkIndex new_index;
  uint64_t offset = 0;
  std::string buf;
  Status st = ForEachChunk([&](const Chunk& chunk) -> Status {
    buf.clear();
    uint32_t len = EncodeChunk(chunk, &buf);
    I2MR_RETURN_IF_ERROR(w.value()->Append(buf));
    new_index.Put(chunk.key, ChunkLocation{offset, len, 0});
    offset += len;
    return Status::OK();
  });
  if (!st.ok()) return st;
  I2MR_RETURN_IF_ERROR(w.value()->Close());

  // Swap in the compacted file.
  I2MR_RETURN_IF_ERROR(writer_->Close());
  writer_.reset();
  I2MR_RETURN_IF_ERROR(RenameFile(tmp_path, data_path()));
  if (offset > 0) new_index.AddBatch(BatchInfo{0, offset});
  index_ = std::move(new_index);
  file_end_ = offset;
  I2MR_RETURN_IF_ERROR(index_.Save(index_path()));

  auto w2 = WritableFile::Create(data_path(), /*append=*/true);
  if (!w2.ok()) return w2.status();
  writer_ = std::move(w2.value());
  reader_.reset();
  reader_stale_ = true;
  windows_.clear();
  tail_buf_.clear();
  tail_dead_ = 0;
  tail_start_ = 0;
  return Status::OK();
}

}  // namespace i2mr
