#include "mrbg/mrbg_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/codec.h"
#include "common/logging.h"
#include "common/trace.h"
#include "io/env.h"

namespace i2mr {
namespace {

constexpr uint32_t kManifestMagic = 0x4d4d4631;  // "MMF1"
constexpr char kManifestName[] = "MANIFEST";

// MANIFEST format: [u32 magic][u64 next_segment_id][u32 count]
// followed by count ([u64 id][u64 committed_length]) entries in logical
// scan order. A segment's physical file may be longer than its committed
// length (a dead tail grown through a hard link after the manifest was
// written); the excess is never read.
struct ManifestEntry {
  uint64_t id = 0;
  uint64_t length = 0;
};

Status ParseManifest(std::string_view data, uint64_t* next_id,
                     std::vector<ManifestEntry>* entries) {
  Decoder dec(data);
  uint32_t magic, count;
  if (!dec.GetFixed32(&magic) || magic != kManifestMagic) {
    return Status::Corruption("bad manifest magic");
  }
  if (!dec.GetFixed64(next_id) || !dec.GetFixed32(&count)) {
    return Status::Corruption("bad manifest header");
  }
  entries->clear();
  for (uint32_t i = 0; i < count; ++i) {
    ManifestEntry e;
    if (!dec.GetFixed64(&e.id) || !dec.GetFixed64(&e.length)) {
      return Status::Corruption("bad manifest entry");
    }
    entries->push_back(e);
  }
  if (!dec.done()) return Status::Corruption("manifest trailing bytes");
  return Status::OK();
}

std::string EncodeManifest(uint64_t next_id,
                           const std::vector<ManifestEntry>& entries) {
  std::string buf;
  PutFixed32(&buf, kManifestMagic);
  PutFixed64(&buf, next_id);
  PutFixed32(&buf, static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    PutFixed64(&buf, e.id);
    PutFixed64(&buf, e.length);
  }
  return buf;
}

std::string SegmentFileName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.dat",
                static_cast<unsigned long long>(id));
  return buf;
}

bool ParseSegmentFileName(const std::string& name, uint64_t* id) {
  constexpr char kPrefix[] = "seg-";
  constexpr char kSuffix[] = ".dat";
  if (name.size() <= 4 + 4 || name.compare(0, 4, kPrefix) != 0 ||
      name.compare(name.size() - 4, 4, kSuffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *id = v;
  return true;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

const char* ReadModeName(ReadMode mode) {
  switch (mode) {
    case ReadMode::kIndexOnly: return "index-only";
    case ReadMode::kSingleFixedWindow: return "single-fix-window";
    case ReadMode::kMultiFixedWindow: return "multi-fix-window";
    case ReadMode::kMultiDynamicWindow: return "multi-dynamic-window";
  }
  return "?";
}

StatusOr<std::unique_ptr<MRBGStore>> MRBGStore::Open(
    const std::string& dir, const MRBGStoreOptions& options) {
  I2MR_RETURN_IF_ERROR(CreateDirs(dir));
  auto store = std::unique_ptr<MRBGStore>(new MRBGStore(dir, options));
  I2MR_RETURN_IF_ERROR(store->OpenFiles());
  store->StartCompactor();
  return store;
}

MRBGStore::~MRBGStore() { (void)Close(); }

std::string MRBGStore::data_path() const { return JoinPath(dir_, "mrbg.dat"); }
std::string MRBGStore::index_path() const { return JoinPath(dir_, "mrbg.idx"); }
std::string MRBGStore::ManifestPath() const {
  return JoinPath(dir_, kManifestName);
}
std::string MRBGStore::SegmentPath(uint64_t id) const {
  return JoinPath(dir_, SegmentFileName(id));
}

// ---------------------------------------------------------------------------
// Open / recovery
// ---------------------------------------------------------------------------

Status MRBGStore::OpenFiles() {
  // The on-disk format wins: a directory that already holds a MANIFEST is
  // log-structured no matter what the caller asked for.
  log_structured_ = options_.log_structured || FileExists(ManifestPath());
  return log_structured_ ? OpenLogStructured() : OpenRaw();
}

Status MRBGStore::OpenRaw() {
  if (FileExists(index_path())) {
    I2MR_RETURN_IF_ERROR(index_.Load(index_path()));
  }
  if (FileExists(data_path())) {
    auto sz = FileSize(data_path());
    if (!sz.ok()) return sz.status();
    file_end_ = *sz;
  } else {
    file_end_ = 0;
  }
  live_bytes_ = 0;
  index_.ForEach([&](const std::string&, const ChunkLocation& loc) {
    live_bytes_ += loc.length;
  });
  auto w = WritableFile::Create(data_path(), /*append=*/true);
  if (!w.ok()) return w.status();
  writer_ = std::move(w.value());
  reader_.reset();
  reader_stale_ = true;
  return Status::OK();
}

Status MRBGStore::OpenLogStructured() {
  bool have_manifest = FileExists(ManifestPath());
  segments_.clear();
  next_segment_id_ = 1;
  if (have_manifest) {
    auto data = ReadFileToString(ManifestPath());
    if (!data.ok()) return data.status();
    std::vector<ManifestEntry> entries;
    I2MR_RETURN_IF_ERROR(ParseManifest(*data, &next_segment_id_, &entries));
    for (const auto& e : entries) {
      Segment seg;
      seg.id = e.id;
      seg.length = e.length;
      segments_.push_back(std::move(seg));
    }
  }

  // Drop strays: tmp files of an interrupted rewrite, segments a crashed
  // compaction renamed but never committed to the manifest (or, with no
  // manifest at all, of an uncommitted migration), and — once a manifest
  // exists — the raw-layout working files a committed migration left
  // behind. The manifest is the commit point; anything it doesn't name is
  // garbage.
  std::unordered_set<uint64_t> referenced;
  for (const auto& seg : segments_) referenced.insert(seg.id);
  auto files = ListFiles(dir_);
  if (!files.ok()) return files.status();
  for (const auto& path : *files) {
    std::string name = Basename(path);
    bool stray = EndsWith(name, ".tmp") || EndsWith(name, ".compact");
    uint64_t id;
    if (ParseSegmentFileName(name, &id)) {
      stray = !have_manifest || referenced.count(id) == 0;
    }
    if (have_manifest && (name == "mrbg.dat" || name == "mrbg.idx")) {
      stray = true;
    }
    if (stray) I2MR_RETURN_IF_ERROR(RemoveAll(path));
  }

  if (!have_manifest) {
    if (FileExists(index_path())) {
      I2MR_RETURN_IF_ERROR(MigrateRawToLogStructuredLocked());
    } else if (FileExists(data_path())) {
      // Raw data without its index is unreadable in either layout.
      I2MR_RETURN_IF_ERROR(RemoveAll(data_path()));
    }
  }

  // Rebuild the chunk index by sequentially scanning the committed
  // segments in logical order (last writer wins; tombstones erase).
  index_.Clear();
  for (size_t i = 0; i < segments_.size(); ++i) {
    I2MR_RETURN_IF_ERROR(ScanSegmentLocked(i));
  }

  // Always start a fresh active segment on a fresh inode: a restored
  // segment file may share its inode with a committed epoch snapshot, so
  // it must never be appended to in place.
  Segment active;
  active.id = next_segment_id_++;
  auto w = WritableFile::Create(SegmentPath(active.id), /*append=*/false);
  if (!w.ok()) return w.status();
  writer_ = std::move(w.value());
  segments_.push_back(std::move(active));
  file_end_ = 0;
  batch_start_ = 0;

  live_bytes_ = 0;
  live_active_bytes_ = 0;
  sealed_bytes_ = 0;
  index_.ForEach([&](const std::string&, const ChunkLocation& loc) {
    live_bytes_ += loc.length;
  });
  for (size_t i = 0; i + 1 < segments_.size(); ++i) {
    sealed_bytes_ += segments_[i].length;
  }
  crashed_ = false;
  reader_.reset();
  reader_stale_ = true;

  // A compaction interrupted mid-pass left its waste behind; the policy
  // check re-triggers it, which is how a half-finished pass "resumes".
  if (options_.background_compaction && ShouldCompactLocked()) {
    RequestCompactionLocked();
  }
  return Status::OK();
}

Status MRBGStore::ScanSegmentLocked(size_t pos) {
  Segment& seg = segments_[pos];
  if (seg.length == 0) return Status::OK();
  std::string path = SegmentPath(seg.id);
  auto sz = FileSize(path);
  if (!sz.ok()) return sz.status();
  if (*sz < seg.length) {
    return Status::Corruption("segment shorter than manifest: " + path);
  }
  auto mm = MmapFile::Open(path);
  if (!mm.ok()) return mm.status();
  // Cap strictly at the committed length: anything past it is a dead tail
  // grown through a hard link after this manifest was written.
  std::string_view view = (*mm)->data().substr(0, seg.length);
  uint32_t batch_id = static_cast<uint32_t>(index_.batches().size());
  index_.AddBatch(BatchInfo{0, seg.length, seg.id});
  uint64_t off = 0;
  ScannedFrame frame;
  while (off < seg.length) {
    Status st = ScanFrame(view.substr(off), &frame);
    if (!st.ok()) {
      // The committed region must scan clean — torn frames can only exist
      // past a manifest boundary, and those bytes were capped away.
      return Status::Corruption("bad frame in " + path + " at offset " +
                                std::to_string(off) + ": " + st.message());
    }
    if (frame.tombstone) {
      index_.Erase(frame.key);
    } else {
      index_.Put(frame.key, ChunkLocation{off, frame.length, batch_id, seg.id});
    }
    off += frame.length;
  }
  return Status::OK();
}

Status MRBGStore::MigrateRawToLogStructuredLocked() {
  // Live chunks are defined by the raw index — scanning mrbg.dat instead
  // would resurrect raw-mode deletions, which live only in the index.
  ChunkIndex raw;
  I2MR_RETURN_IF_ERROR(raw.Load(index_path()));
  std::vector<std::pair<std::string, ChunkLocation>> entries;
  entries.reserve(raw.size());
  raw.ForEach([&](const std::string& key, const ChunkLocation& loc) {
    entries.emplace_back(key, loc);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const uint64_t out_id = 1;
  uint64_t out_len = 0;
  if (!entries.empty()) {
    auto r = RandomAccessFile::Open(data_path());
    if (!r.ok()) return r.status();
    std::string tmp = SegmentPath(out_id) + ".tmp";
    auto w = WritableFile::Create(tmp);
    if (!w.ok()) return w.status();
    std::string buf;
    ScannedFrame frame;
    for (const auto& [key, loc] : entries) {
      I2MR_RETURN_IF_ERROR((*r)->Read(loc.offset, loc.length, &buf));
      if (buf.size() < loc.length) {
        return Status::Corruption("short chunk read migrating " + key);
      }
      Status st = ScanFrame(buf, &frame);
      if (!st.ok() || frame.tombstone || frame.key != key) {
        return Status::Corruption("bad chunk migrating " + key);
      }
      I2MR_RETURN_IF_ERROR(w.value()->Append(buf));
      out_len += loc.length;
    }
    I2MR_RETURN_IF_ERROR(w.value()->Close());
    I2MR_RETURN_IF_ERROR(RenameFile(tmp, SegmentPath(out_id)));
  }
  segments_.clear();
  if (out_len > 0) {
    Segment seg;
    seg.id = out_id;
    seg.length = out_len;
    segments_.push_back(std::move(seg));
  }
  next_segment_id_ = out_id + 1;
  // Commit point: once the manifest exists the store is log-structured and
  // the raw files are garbage (a crash in between redoes the migration).
  I2MR_RETURN_IF_ERROR(WriteManifestLocked());
  I2MR_RETURN_IF_ERROR(RemoveAll(data_path()));
  return RemoveAll(index_path());
}

Status MRBGStore::WriteManifestLocked() {
  if (crashed_) return Status::OK();
  std::vector<ManifestEntry> entries;
  for (size_t i = 0; i < segments_.size(); ++i) {
    bool is_active = writer_ != nullptr && i + 1 == segments_.size();
    uint64_t len =
        is_active ? file_end_ - append_buf_.size() : segments_[i].length;
    if (len > 0) entries.push_back(ManifestEntry{segments_[i].id, len});
  }
  std::string tmp = ManifestPath() + ".tmp";
  I2MR_RETURN_IF_ERROR(
      WriteStringToFile(tmp, EncodeManifest(next_segment_id_, entries)));
  return RenameFile(tmp, ManifestPath());
}

// ---------------------------------------------------------------------------
// Close / reload
// ---------------------------------------------------------------------------

Status MRBGStore::Close() {
  StopCompactor();
  std::lock_guard<std::mutex> lk(mu_);
  return CloseLocked();
}

Status MRBGStore::CloseLocked() {
  if (writer_ == nullptr) return Status::OK();
  if (crashed_) {
    // Leave the disk exactly as the simulated crash left it: no final
    // flush, no batch record, no manifest.
    (void)writer_->Close();
    writer_.reset();
    reader_.reset();
    for (auto& s : segments_) s.reader.reset();
    return Status::OK();
  }
  if (!log_structured_) {
    uint64_t closed_end =
        index_.batches().empty() ? 0 : index_.batches().back().end;
    if (file_end_ > closed_end || !append_buf_.empty()) {
      I2MR_RETURN_IF_ERROR(FinishBatchLocked(/*persist_index=*/true));
    } else if (file_end_ > 0) {
      // A raw-mode delete after the last batch lives only in the index;
      // persist it, or Close would silently resurrect the chunk.
      I2MR_RETURN_IF_ERROR(index_.Save(index_path()));
    }
    Status st = writer_->Close();
    writer_.reset();
    reader_.reset();
    return st;
  }
  I2MR_RETURN_IF_ERROR(FlushAppendBufferLocked());
  if (file_end_ > batch_start_) {
    index_.AddBatch(BatchInfo{batch_start_, file_end_, active_id_locked()});
    batch_start_ = file_end_;
  }
  segments_.back().length = file_end_;
  Status st = writer_->Close();
  writer_.reset();
  if (file_end_ == 0) {
    // Don't leave an empty active segment file behind.
    std::string path = SegmentPath(segments_.back().id);
    segments_.pop_back();
    if (Status st = RemoveAll(path); !st.ok()) {
      LOG_WARN << "mrbg: leaking empty active segment: " << st.ToString();
    }
  }
  I2MR_RETURN_IF_ERROR(WriteManifestLocked());
  for (auto& s : segments_) s.reader.reset();
  reader_.reset();
  return st;
}

Status MRBGStore::Reload() {
  StopCompactor();
  {
    std::lock_guard<std::mutex> lk(mu_);
    index_.Clear();
    append_buf_.clear();
    tail_buf_.clear();
    tail_dead_ = 0;
    tail_start_ = 0;
    windows_.clear();
    query_keys_.clear();
    query_cursor_ = 0;
    if (writer_ != nullptr) {
      I2MR_RETURN_IF_ERROR(writer_->Close());
      writer_.reset();
    }
    reader_.reset();
    segments_.clear();
    next_segment_id_ = 1;
    batch_start_ = 0;
    file_end_ = 0;
    live_bytes_ = 0;
    live_active_bytes_ = 0;
    sealed_bytes_ = 0;
    crashed_ = false;
    I2MR_RETURN_IF_ERROR(OpenFiles());
  }
  StartCompactor();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status MRBGStore::FlushAppendBufferLocked() {
  if (append_buf_.empty() || crashed_) return Status::OK();
  I2MR_RETURN_IF_ERROR(writer_->Append(append_buf_));
  I2MR_RETURN_IF_ERROR(writer_->Flush());
  if (options_.tail_cache_bytes > 0) {
    // Keep a copy of the flushed bytes: the next iteration's merge loop
    // re-queries exactly the chunks this iteration appended.
    if (tail_buf_.size() == tail_dead_) {
      tail_buf_.clear();
      tail_dead_ = 0;
      tail_start_ = file_end_ - append_buf_.size();
    }
    tail_buf_.append(append_buf_);
    size_t live = tail_buf_.size() - tail_dead_;
    if (live > options_.tail_cache_bytes) {
      size_t drop = live - options_.tail_cache_bytes;
      tail_dead_ += drop;
      tail_start_ += drop;
    }
    if (tail_dead_ > options_.tail_cache_bytes) {
      // Compact only once the dead prefix outgrows the budget.
      tail_buf_.erase(0, tail_dead_);
      tail_dead_ = 0;
    }
  }
  append_buf_.clear();
  reader_stale_ = true;
  if (log_structured_) segments_.back().reader.reset();  // file grew
  return Status::OK();
}

Status MRBGStore::AppendChunkLocked(const Chunk& chunk) {
  if (const ChunkLocation* old = index_.Lookup(chunk.key)) {
    live_bytes_ -= old->length;
    if (log_structured_ && old->segment == active_id_locked()) {
      live_active_bytes_ -= old->length;
    }
  }
  uint64_t offset = file_end_;
  uint32_t len = EncodeChunk(chunk, &append_buf_);
  file_end_ += len;
  live_bytes_ += len;
  uint64_t seg = 0;
  if (log_structured_) {
    seg = active_id_locked();
    live_active_bytes_ += len;
  }
  index_.Put(chunk.key, ChunkLocation{offset, len, open_batch_id_locked(), seg});
  ++stats_.chunks_appended;
  stats_.bytes_appended += len;
  if (append_buf_.size() >= options_.append_buffer_bytes) {
    return FlushAppendBufferLocked();
  }
  return Status::OK();
}

Status MRBGStore::RemoveChunkLocked(const std::string& key) {
  const ChunkLocation* old = index_.Lookup(key);
  if (old == nullptr) return Status::OK();
  uint32_t old_len = old->length;
  uint64_t old_seg = old->segment;
  live_bytes_ -= old_len;
  if (log_structured_) {
    if (old_seg == active_id_locked()) live_active_bytes_ -= old_len;
    // A durable delete: the tombstone replays as an erase when the index
    // is rebuilt by scan.
    uint32_t tlen = EncodeTombstone(key, &append_buf_);
    file_end_ += tlen;
    ++stats_.tombstones_appended;
  }
  index_.Erase(key);
  ++stats_.chunks_removed;
  if (log_structured_ && append_buf_.size() >= options_.append_buffer_bytes) {
    return FlushAppendBufferLocked();
  }
  return Status::OK();
}

Status MRBGStore::FinishBatchLocked(bool persist_index) {
  if (crashed_) return Status::OK();
  I2MR_RETURN_IF_ERROR(FlushAppendBufferLocked());
  if (log_structured_) {
    if (file_end_ > batch_start_) {
      index_.AddBatch(BatchInfo{batch_start_, file_end_, active_id_locked()});
      batch_start_ = file_end_;
    }
    segments_.back().length = file_end_;
    if (file_end_ >= options_.segment_target_bytes) {
      I2MR_RETURN_IF_ERROR(RotateActiveLocked());
    }
  } else {
    uint64_t start =
        index_.batches().empty() ? 0 : index_.batches().back().end;
    if (file_end_ > start) {
      index_.AddBatch(BatchInfo{start, file_end_, 0});
    }
  }
  if (persist_index) I2MR_RETURN_IF_ERROR(PersistIndexLocked());
  if (log_structured_ && options_.background_compaction &&
      ShouldCompactLocked()) {
    RequestCompactionLocked();
  }
  return Status::OK();
}

Status MRBGStore::PersistIndexLocked() {
  return log_structured_ ? WriteManifestLocked() : index_.Save(index_path());
}

Status MRBGStore::RotateActiveLocked() {
  // Callers close the open batch and flush before rotating.
  if (file_end_ == 0) return Status::OK();
  I2MR_RETURN_IF_ERROR(writer_->Close());
  writer_.reset();
  segments_.back().length = file_end_;
  segments_.back().reader.reset();
  sealed_bytes_ += file_end_;
  live_active_bytes_ = 0;
  Segment next;
  next.id = next_segment_id_++;
  auto w = WritableFile::Create(SegmentPath(next.id), /*append=*/false);
  if (!w.ok()) return w.status();
  writer_ = std::move(w.value());
  segments_.push_back(std::move(next));
  file_end_ = 0;
  batch_start_ = 0;
  tail_buf_.clear();
  tail_dead_ = 0;
  tail_start_ = 0;
  return Status::OK();
}

Status MRBGStore::AppendChunk(const Chunk& chunk) {
  std::lock_guard<std::mutex> lk(mu_);
  return AppendChunkLocked(chunk);
}

Status MRBGStore::RemoveChunk(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  return RemoveChunkLocked(key);
}

Status MRBGStore::FinishBatch(bool persist_index) {
  std::lock_guard<std::mutex> lk(mu_);
  return FinishBatchLocked(persist_index);
}

Status MRBGStore::PersistIndex() {
  std::lock_guard<std::mutex> lk(mu_);
  return PersistIndexLocked();
}

// ---------------------------------------------------------------------------
// Query path
// ---------------------------------------------------------------------------

Status MRBGStore::PrepareQueries(std::vector<std::string> sorted_keys) {
  std::lock_guard<std::mutex> lk(mu_);
  query_keys_ = std::move(sorted_keys);
  query_cursor_ = 0;
  windows_.clear();
  return Status::OK();
}

Status MRBGStore::EnsureReaderLocked() {
  if (reader_ != nullptr && !reader_stale_) return Status::OK();
  auto r = RandomAccessFile::Open(data_path());
  if (!r.ok()) return r.status();
  reader_ = std::move(r.value());
  reader_stale_ = false;
  return Status::OK();
}

MRBGStore::Segment* MRBGStore::FindSegmentLocked(uint64_t id) {
  for (auto& s : segments_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

uint64_t MRBGStore::SegmentFlushedEndLocked(const ChunkLocation& loc) const {
  if (!log_structured_ || loc.segment == segments_.back().id) {
    return file_end_ - append_buf_.size();
  }
  for (const auto& s : segments_) {
    if (s.id == loc.segment) return s.length;
  }
  return 0;
}

uint64_t MRBGStore::DynamicWindowEndLocked(const ChunkLocation& loc,
                                           size_t qpos) const {
  // Algorithm 1 (+ §5.2 multi-batch skip): grow the window over upcoming
  // queried chunks in the same batch while the gap between consecutive
  // chunks stays below T and the window fits in the read cache.
  uint64_t window_bytes = loc.length;
  uint64_t last_end = loc.offset + loc.length;
  for (size_t j = qpos + 1; j < query_keys_.size(); ++j) {
    const ChunkLocation* next = index_.Lookup(query_keys_[j]);
    if (next == nullptr) continue;            // key absent: no position
    if (next->segment != loc.segment) continue;  // other file: other window
    if (next->batch != loc.batch) continue;   // other batch: other window
    if (next->offset < last_end) continue;    // already covered
    uint64_t gap = next->offset - last_end;
    if (gap >= options_.gap_threshold_bytes) break;
    if (window_bytes + gap + next->length > options_.read_cache_bytes) break;
    window_bytes += gap + next->length;
    last_end = next->offset + next->length;
  }
  return last_end;
}

StatusOr<std::string_view> MRBGStore::ReadChunkBytesLocked(
    const ChunkLocation& loc) {
  bool in_active = !log_structured_ || loc.segment == active_id_locked();

  // Recently flushed? Serve from the retained tail copy, no I/O. (The tail
  // cache covers the raw file / the active segment only.)
  size_t tail_live = tail_buf_.size() - tail_dead_;
  if (in_active && tail_live > 0 && loc.offset >= tail_start_ &&
      loc.offset + loc.length <= tail_start_ + tail_live) {
    ++stats_.cache_hits;
    return std::string_view(
        tail_buf_.data() + tail_dead_ + (loc.offset - tail_start_),
        loc.length);
  }

  RandomAccessFile* reader = nullptr;
  if (log_structured_) {
    Segment* seg = FindSegmentLocked(loc.segment);
    if (seg == nullptr) {
      return Status::Corruption("chunk in unknown segment " +
                                std::to_string(loc.segment));
    }
    if (seg->reader == nullptr) {
      auto r = RandomAccessFile::Open(SegmentPath(seg->id));
      if (!r.ok()) return r.status();
      seg->reader = std::shared_ptr<RandomAccessFile>(std::move(r.value()));
    }
    reader = seg->reader.get();
  } else {
    I2MR_RETURN_IF_ERROR(EnsureReaderLocked());
    reader = reader_.get();
  }

  if (options_.read_mode == ReadMode::kIndexOnly) {
    Window& w = windows_[~0ull];  // scratch window
    w.buf.clear();
    I2MR_RETURN_IF_ERROR(reader->Read(loc.offset, loc.length, &w.buf));
    ++stats_.io_reads;
    stats_.bytes_read += w.buf.size();
    if (w.buf.size() < loc.length) {
      return Status::Corruption("short chunk read");
    }
    w.start = loc.offset;
    w.end = loc.offset + w.buf.size();
    return std::string_view(w.buf.data(), loc.length);
  }

  // Offsets are segment-relative in the log-structured layout, so windows
  // are keyed per segment there — even in single-window mode.
  uint64_t wkey;
  if (options_.read_mode == ReadMode::kSingleFixedWindow) {
    wkey = log_structured_ ? (loc.segment << 32) : 0;
  } else {
    wkey = log_structured_ ? ((loc.segment << 32) | loc.batch)
                           : static_cast<uint64_t>(loc.batch);
  }
  Window& w = windows_[wkey];
  if (loc.offset >= w.start && loc.offset + loc.length <= w.end &&
      !w.buf.empty()) {
    ++stats_.cache_hits;
    return std::string_view(w.buf.data() + (loc.offset - w.start), loc.length);
  }

  // Miss: choose the read range.
  uint64_t end;
  switch (options_.read_mode) {
    case ReadMode::kSingleFixedWindow:
    case ReadMode::kMultiFixedWindow:
      end = loc.offset +
            std::max<uint64_t>(loc.length, options_.fixed_window_bytes);
      break;
    case ReadMode::kMultiDynamicWindow: {
      // Locate the query cursor position of this chunk's key to look ahead.
      end = DynamicWindowEndLocked(loc, query_cursor_);
      break;
    }
    default:
      end = loc.offset + loc.length;
  }
  // Never read past this batch (multi-window modes) or the flushed bytes
  // of the chunk's file.
  if (options_.read_mode != ReadMode::kSingleFixedWindow &&
      loc.batch < index_.batches().size()) {
    end = std::min<uint64_t>(end, index_.batches()[loc.batch].end);
  }
  end = std::min<uint64_t>(end, SegmentFlushedEndLocked(loc));
  end = std::max<uint64_t>(end, loc.offset + loc.length);

  I2MR_RETURN_IF_ERROR(
      reader->Read(loc.offset, static_cast<size_t>(end - loc.offset), &w.buf));
  ++stats_.io_reads;
  stats_.bytes_read += w.buf.size();
  if (w.buf.size() < loc.length) {
    return Status::Corruption("short window read");
  }
  w.start = loc.offset;
  w.end = loc.offset + w.buf.size();
  return std::string_view(w.buf.data(), loc.length);
}

StatusOr<Chunk> MRBGStore::QueryLocked(const std::string& key) {
  ++stats_.queries;
  // Advance the cursor to this key's position in L (queries arrive in
  // PrepareQueries order; unknown keys fall back to standalone lookups).
  while (query_cursor_ < query_keys_.size() &&
         query_keys_[query_cursor_] < key) {
    ++query_cursor_;
  }

  const ChunkLocation* loc = index_.Lookup(key);
  if (loc == nullptr) return Status::NotFound("no chunk for key " + key);

  // Chunk still sitting (entirely or partly) in the append buffer?
  bool in_active = !log_structured_ || loc->segment == active_id_locked();
  uint64_t flushed_end = file_end_ - append_buf_.size();
  if (in_active && loc->offset >= flushed_end) {
    std::string_view view(append_buf_.data() + (loc->offset - flushed_end),
                          loc->length);
    Chunk chunk;
    I2MR_RETURN_IF_ERROR(DecodeChunk(view, &chunk));
    ++stats_.cache_hits;
    return chunk;
  }

  auto bytes = ReadChunkBytesLocked(*loc);
  if (!bytes.ok()) return bytes.status();
  Chunk chunk;
  I2MR_RETURN_IF_ERROR(DecodeChunk(*bytes, &chunk));
  if (chunk.key != key) {
    return Status::Corruption("index points to wrong chunk: wanted " + key +
                              " got " + chunk.key);
  }
  return chunk;
}

StatusOr<Chunk> MRBGStore::Query(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  return QueryLocked(key);
}

bool MRBGStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.Contains(key);
}

size_t MRBGStore::num_chunks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.size();
}

size_t MRBGStore::num_batches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.batches().size();
}

Status MRBGStore::MergeGroup(const std::string& k2,
                             const std::vector<DeltaEdge>& deltas,
                             Chunk* merged) {
  std::lock_guard<std::mutex> lk(mu_);
  merged->key = k2;
  merged->entries.clear();
  auto existing = QueryLocked(k2);
  if (existing.ok()) {
    *merged = std::move(existing.value());
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  ApplyDeltaToChunk(deltas, merged);
  if (merged->empty()) {
    return RemoveChunkLocked(k2);
  }
  return AppendChunkLocked(*merged);
}

// ---------------------------------------------------------------------------
// Iteration / compaction
// ---------------------------------------------------------------------------

Status MRBGStore::ForEachChunkLocked(
    const std::function<Status(const Chunk&)>& fn) {
  I2MR_RETURN_IF_ERROR(FlushAppendBufferLocked());
  std::vector<std::pair<std::string, ChunkLocation>> entries;
  entries.reserve(index_.size());
  index_.ForEach([&](const std::string& key, const ChunkLocation& loc) {
    entries.emplace_back(key, loc);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string buf;
  for (const auto& [key, loc] : entries) {
    RandomAccessFile* reader = nullptr;
    if (log_structured_) {
      Segment* seg = FindSegmentLocked(loc.segment);
      if (seg == nullptr) return Status::Corruption("chunk in unknown segment");
      if (seg->reader == nullptr) {
        auto r = RandomAccessFile::Open(SegmentPath(seg->id));
        if (!r.ok()) return r.status();
        seg->reader = std::shared_ptr<RandomAccessFile>(std::move(r.value()));
      }
      reader = seg->reader.get();
    } else {
      I2MR_RETURN_IF_ERROR(EnsureReaderLocked());
      reader = reader_.get();
    }
    I2MR_RETURN_IF_ERROR(reader->Read(loc.offset, loc.length, &buf));
    if (buf.size() < loc.length) return Status::Corruption("short read");
    Chunk chunk;
    I2MR_RETURN_IF_ERROR(DecodeChunk(buf, &chunk));
    I2MR_RETURN_IF_ERROR(fn(chunk));
  }
  return Status::OK();
}

Status MRBGStore::ForEachChunk(const std::function<Status(const Chunk&)>& fn) {
  std::lock_guard<std::mutex> lk(mu_);
  return ForEachChunkLocked(fn);
}

Status MRBGStore::CompactRawLocked() {
  I2MR_RETURN_IF_ERROR(FlushAppendBufferLocked());
  std::string tmp_path = data_path() + ".compact";
  auto w = WritableFile::Create(tmp_path);
  if (!w.ok()) return w.status();

  ChunkIndex new_index;
  uint64_t offset = 0;
  std::string buf;
  Status st = ForEachChunkLocked([&](const Chunk& chunk) -> Status {
    buf.clear();
    uint32_t len = EncodeChunk(chunk, &buf);
    I2MR_RETURN_IF_ERROR(w.value()->Append(buf));
    new_index.Put(chunk.key, ChunkLocation{offset, len, 0, 0});
    offset += len;
    return Status::OK();
  });
  if (!st.ok()) return st;
  I2MR_RETURN_IF_ERROR(w.value()->Close());

  // Swap in the compacted file.
  I2MR_RETURN_IF_ERROR(writer_->Close());
  writer_.reset();
  I2MR_RETURN_IF_ERROR(RenameFile(tmp_path, data_path()));
  if (offset > 0) new_index.AddBatch(BatchInfo{0, offset, 0});
  index_ = std::move(new_index);
  file_end_ = offset;
  live_bytes_ = offset;
  I2MR_RETURN_IF_ERROR(index_.Save(index_path()));

  auto w2 = WritableFile::Create(data_path(), /*append=*/true);
  if (!w2.ok()) return w2.status();
  writer_ = std::move(w2.value());
  reader_.reset();
  reader_stale_ = true;
  windows_.clear();
  tail_buf_.clear();
  tail_dead_ = 0;
  tail_start_ = 0;
  return Status::OK();
}

bool MRBGStore::ShouldCompactLocked() const {
  if (!log_structured_ || segments_.size() <= 1) return false;
  if (segments_.size() - 1 > options_.compact_max_segments) return true;
  // Only sealed waste is reclaimable (victims are the sealed segments), so
  // the ratio must ignore the active segment or it would re-trigger
  // forever on waste a pass cannot touch.
  uint64_t live_sealed = live_bytes_ - live_active_bytes_;
  uint64_t waste =
      sealed_bytes_ > live_sealed ? sealed_bytes_ - live_sealed : 0;
  return waste >= options_.compact_min_wasted_bytes &&
         static_cast<double>(waste) >=
             options_.compact_wasted_ratio * static_cast<double>(sealed_bytes_);
}

void MRBGStore::RequestCompactionLocked() {
  {
    std::lock_guard<std::mutex> lk(compact_mu_);
    compact_requested_ = true;
  }
  compact_cv_.notify_all();
}

Status MRBGStore::CompactPass(bool all) {
  TRACE_SPAN("mrbg.compact", "all=%d", all ? 1 : 0);
  auto crash_at = [&](const char* stage) {
    if (!options_.compact_crash_hook) return false;
    if (!options_.compact_crash_hook(stage)) return false;
    std::lock_guard<std::mutex> lk(mu_);
    crashed_ = true;
    return true;
  };

  struct Victim {
    uint64_t id;
    uint64_t length;
  };
  std::vector<Victim> victims;
  std::vector<std::pair<std::string, ChunkLocation>> lives;
  uint64_t out_id = 0;
  {
    TRACE_SPAN("compact.snapshot");
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_ || !log_structured_ || writer_ == nullptr) {
      return Status::OK();
    }
    if (all) {
      I2MR_RETURN_IF_ERROR(FlushAppendBufferLocked());
      if (file_end_ > batch_start_) {
        index_.AddBatch(
            BatchInfo{batch_start_, file_end_, active_id_locked()});
        batch_start_ = file_end_;
      }
      segments_.back().length = file_end_;
      I2MR_RETURN_IF_ERROR(RotateActiveLocked());
    }
    if (segments_.size() <= 1) {
      // Nothing sealed to rewrite.
      return all ? WriteManifestLocked() : Status::OK();
    }
    victims.reserve(segments_.size() - 1);
    for (size_t i = 0; i + 1 < segments_.size(); ++i) {
      victims.push_back(Victim{segments_[i].id, segments_[i].length});
    }
    uint64_t active = active_id_locked();
    index_.ForEach([&](const std::string& key, const ChunkLocation& loc) {
      if (loc.segment != active) lives.emplace_back(key, loc);
    });
    out_id = next_segment_id_++;
  }

  // ---- Rewrite phase: no lock held. The victims are sealed (immutable)
  // segments, read through private readers; appends, queries and epoch
  // snapshots proceed concurrently.
  trace::ScopedSpan rewrite_span("compact.rewrite", "victims=%zu live=%zu",
                                 victims.size(), lives.size());
  std::sort(lives.begin(), lives.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::unordered_set<uint64_t> victim_ids;
  for (const auto& v : victims) victim_ids.insert(v.id);

  uint64_t out_len = 0;
  std::unordered_map<std::string, uint64_t> new_off;
  if (!lives.empty()) {
    std::string tmp = SegmentPath(out_id) + ".tmp";
    auto w = WritableFile::Create(tmp);
    if (!w.ok()) return w.status();
    std::unordered_map<uint64_t, std::unique_ptr<RandomAccessFile>> readers;
    std::string buf;
    ScannedFrame frame;
    for (const auto& [key, loc] : lives) {
      auto& r = readers[loc.segment];
      if (r == nullptr) {
        auto rr = RandomAccessFile::Open(SegmentPath(loc.segment));
        if (!rr.ok()) return rr.status();
        r = std::move(rr.value());
      }
      I2MR_RETURN_IF_ERROR(r->Read(loc.offset, loc.length, &buf));
      if (buf.size() < loc.length) {
        return Status::Corruption("short chunk read compacting " + key);
      }
      Status st = ScanFrame(buf, &frame);
      if (!st.ok() || frame.tombstone || frame.key != key) {
        return Status::Corruption("bad chunk compacting " + key);
      }
      I2MR_RETURN_IF_ERROR(w.value()->Append(buf));
      new_off[key] = out_len;
      out_len += loc.length;
    }
    I2MR_RETURN_IF_ERROR(w.value()->Close());
    if (crash_at("rewrite")) return Status::OK();
    I2MR_RETURN_IF_ERROR(RenameFile(tmp, SegmentPath(out_id)));
    if (crash_at("rename")) return Status::OK();
  } else {
    if (crash_at("rewrite")) return Status::OK();
    if (crash_at("rename")) return Status::OK();
  }

  // ---- Install phase: swap segment list, index entries and MANIFEST
  // under the lock. Entries appended or removed while the rewrite ran
  // point at the active segment (or newer sealed ones) and win over the
  // compacted copies.
  std::vector<std::string> victim_paths;
  rewrite_span.End();
  {
    TRACE_SPAN("compact.install");
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) return Status::OK();
    // The compacted segment goes FIRST in logical order: its data is older
    // than everything appended since the pass began.
    std::vector<Segment> new_segments;
    if (out_len > 0) {
      Segment out;
      out.id = out_id;
      out.length = out_len;
      new_segments.push_back(std::move(out));
    }
    for (auto& seg : segments_) {
      if (victim_ids.count(seg.id)) continue;
      new_segments.push_back(std::move(seg));
    }
    segments_ = std::move(new_segments);

    // Renumber batches: batch 0 is the compacted segment; batches of
    // surviving segments keep their relative order after it.
    std::vector<BatchInfo> new_batches;
    std::unordered_map<uint32_t, uint32_t> batch_map;
    if (out_len > 0) new_batches.push_back(BatchInfo{0, out_len, out_id});
    {
      const auto& old_batches = index_.batches();
      for (uint32_t b = 0; b < old_batches.size(); ++b) {
        if (victim_ids.count(old_batches[b].segment)) continue;
        batch_map[b] = static_cast<uint32_t>(new_batches.size());
        new_batches.push_back(old_batches[b]);
      }
      // The open batch (id == old size) maps to the new open id.
      batch_map[static_cast<uint32_t>(old_batches.size())] =
          static_cast<uint32_t>(new_batches.size());
    }
    index_.SetBatches(std::move(new_batches));

    bool missing = false;
    index_.ForEachMutable([&](const std::string& key, ChunkLocation& loc) {
      if (victim_ids.count(loc.segment)) {
        auto it = new_off.find(key);
        if (it == new_off.end()) {
          missing = true;
          return;
        }
        loc = ChunkLocation{it->second, loc.length, 0, out_id};
      } else {
        auto it = batch_map.find(loc.batch);
        if (it == batch_map.end()) {
          missing = true;
          return;
        }
        loc.batch = it->second;
      }
    });
    if (missing) {
      return Status::Corruption("compaction lost track of a live chunk");
    }

    uint64_t active = active_id_locked();
    live_bytes_ = 0;
    live_active_bytes_ = 0;
    index_.ForEach([&](const std::string&, const ChunkLocation& loc) {
      live_bytes_ += loc.length;
      if (loc.segment == active) live_active_bytes_ += loc.length;
    });
    sealed_bytes_ = 0;
    for (size_t i = 0; i + 1 < segments_.size(); ++i) {
      sealed_bytes_ += segments_[i].length;
    }
    windows_.clear();

    ++stats_.compaction_passes;
    uint64_t victim_bytes = 0;
    for (const auto& v : victims) victim_bytes += v.length;
    if (victim_bytes > out_len) {
      stats_.compaction_bytes_reclaimed += victim_bytes - out_len;
    }
    I2MR_RETURN_IF_ERROR(WriteManifestLocked());
    for (const auto& v : victims) victim_paths.push_back(SegmentPath(v.id));
  }
  if (crash_at("manifest")) return Status::OK();

  // Unlink the victims. Epoch snapshots that hard-linked them keep their
  // bytes alive until the snapshot dir itself is garbage-collected.
  for (const auto& p : victim_paths) {
    if (Status st = RemoveAll(p); !st.ok()) {
      LOG_WARN << "mrbg: compacted segment not reclaimed: " << st.ToString();
    }
  }
  return Status::OK();
}

Status MRBGStore::Compact() {
  if (!log_structured_) {
    std::lock_guard<std::mutex> lk(mu_);
    return CompactRawLocked();
  }
  std::unique_lock<std::mutex> clk(compact_mu_);
  compact_cv_.wait(clk, [&] { return !compact_running_; });
  compact_running_ = true;
  compact_requested_ = false;
  clk.unlock();
  Status st = CompactPass(/*all=*/true);
  clk.lock();
  compact_running_ = false;
  clk.unlock();
  compact_cv_.notify_all();
  return st;
}

Status MRBGStore::CompactIfNeeded() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!log_structured_ || !ShouldCompactLocked()) return Status::OK();
  }
  std::unique_lock<std::mutex> clk(compact_mu_);
  compact_cv_.wait(clk, [&] { return !compact_running_; });
  compact_running_ = true;
  compact_requested_ = false;
  clk.unlock();
  Status st = CompactPass(/*all=*/false);
  clk.lock();
  compact_running_ = false;
  clk.unlock();
  compact_cv_.notify_all();
  return st;
}

void MRBGStore::WaitForCompaction() {
  std::unique_lock<std::mutex> lk(compact_mu_);
  compact_cv_.wait(lk, [&] {
    return compact_stop_ || (!compact_requested_ && !compact_running_);
  });
}

void MRBGStore::CompactorMain() {
  trace::TraceCollector::SetThreadName("mrbg-compactor");
  for (;;) {
    std::unique_lock<std::mutex> lk(compact_mu_);
    compact_cv_.wait(lk, [&] {
      return compact_stop_ || (compact_requested_ && !compact_running_);
    });
    if (compact_stop_) return;
    compact_requested_ = false;
    compact_running_ = true;
    lk.unlock();
    Status st = CompactPass(/*all=*/false);
    if (!st.ok()) {
      LOG_WARN << "background compaction failed: " << st.ToString();
    }
    lk.lock();
    compact_running_ = false;
    lk.unlock();
    compact_cv_.notify_all();
  }
}

void MRBGStore::StartCompactor() {
  if (!options_.background_compaction || !log_structured_) return;
  if (compactor_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(compact_mu_);
    compact_stop_ = false;
  }
  compactor_ = std::thread(&MRBGStore::CompactorMain, this);
}

void MRBGStore::StopCompactor() {
  if (!compactor_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(compact_mu_);
    compact_stop_ = true;
  }
  compact_cv_.notify_all();
  compactor_.join();
  compactor_ = std::thread();
  std::lock_guard<std::mutex> lk(compact_mu_);
  compact_stop_ = false;
  compact_requested_ = false;
  compact_running_ = false;
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

Status MRBGStore::SnapshotInto(const std::string& dst_dir,
                               std::vector<std::string>* files) {
  I2MR_RETURN_IF_ERROR(CreateDirs(dst_dir));
  std::lock_guard<std::mutex> lk(mu_);
  I2MR_RETURN_IF_ERROR(FlushAppendBufferLocked());
  if (!log_structured_) {
    std::string idx = JoinPath(dst_dir, "mrbg.idx");
    if (FileExists(data_path())) {
      std::string dat = JoinPath(dst_dir, "mrbg.dat");
      I2MR_RETURN_IF_ERROR(LinkOrCopyFile(data_path(), dat));
      if (files != nullptr) files->push_back(dat);
    }
    I2MR_RETURN_IF_ERROR(index_.Save(idx));
    if (files != nullptr) files->push_back(idx);
    return Status::OK();
  }
  // Hard-link every non-empty segment at its current committed length and
  // write a snapshot MANIFEST capping it there. The active segment keeps
  // growing through the original path afterwards, but only past what this
  // manifest references — restore scans stop at the recorded length.
  std::vector<ManifestEntry> entries;
  for (size_t i = 0; i < segments_.size(); ++i) {
    bool is_active = writer_ != nullptr && i + 1 == segments_.size();
    uint64_t len = is_active ? file_end_ : segments_[i].length;
    if (len == 0) continue;
    std::string dst = JoinPath(dst_dir, SegmentFileName(segments_[i].id));
    I2MR_RETURN_IF_ERROR(LinkOrCopyFile(SegmentPath(segments_[i].id), dst));
    entries.push_back(ManifestEntry{segments_[i].id, len});
    if (files != nullptr) files->push_back(dst);
  }
  std::string mpath = JoinPath(dst_dir, kManifestName);
  I2MR_RETURN_IF_ERROR(
      WriteStringToFile(mpath, EncodeManifest(next_segment_id_, entries)));
  if (files != nullptr) files->push_back(mpath);
  return Status::OK();
}

StatusOr<std::vector<std::string>> MRBGStore::ListStoreFiles(
    const std::string& dir) {
  std::vector<std::string> out;
  std::string manifest = JoinPath(dir, kManifestName);
  if (FileExists(manifest)) {
    auto data = ReadFileToString(manifest);
    if (!data.ok()) return data.status();
    uint64_t next_id;
    std::vector<ManifestEntry> entries;
    I2MR_RETURN_IF_ERROR(ParseManifest(*data, &next_id, &entries));
    out.push_back(manifest);
    for (const auto& e : entries) {
      out.push_back(JoinPath(dir, SegmentFileName(e.id)));
    }
    return out;
  }
  std::string idx = JoinPath(dir, "mrbg.idx");
  if (FileExists(idx)) {
    std::string dat = JoinPath(dir, "mrbg.dat");
    if (FileExists(dat)) out.push_back(dat);
    out.push_back(idx);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t MRBGStore::file_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_structured_ ? sealed_bytes_ + file_end_ : file_end_;
}

uint64_t MRBGStore::live_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_bytes_;
}

uint64_t MRBGStore::wasted_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = log_structured_ ? sealed_bytes_ + file_end_ : file_end_;
  return total > live_bytes_ ? total - live_bytes_ : 0;
}

size_t MRBGStore::num_segments() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (log_structured_) return segments_.size();
  return file_end_ > 0 ? 1 : 0;
}

}  // namespace i2mr
