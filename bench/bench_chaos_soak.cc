// Chaos soak: a sharded + replicated SSSP pipeline absorbs a seeded
// fault storm (injected EIO/ENOSPC, torn writes, latency on every
// filesystem primitive under its root) while streaming delta rounds,
// then must recover on its own and converge to the exact state of a
// fault-free twin that processed the identical stream — through the
// router read path, through the replicas, and again after a full
// reopen from disk. Violations (a crash would fail the harness
// outright): a read that returns Corruption/Internal during chaos, an
// append that never lands after faults lift, a poisoned router that
// stays poisoned, or any key diverging from the twin.
//
// Seeds come from I2MR_CHAOS_SEEDS (comma-separated); the default four
// keep laptop runs under ~10 s, and the nightly chaos CI job widens
// the sweep. Per seed the run reports injected fault count, appends
// that needed post-storm retry, degraded-mode entries observed, and
// recovery latency (faults lifted -> full parity). Emits
// BENCH_chaos.json; exit status is nonzero on any violation, so the
// binary doubles as a CI gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/sssp.h"
#include "bench_util.h"
#include "common/codec.h"
#include "common/health.h"
#include "common/metrics.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "replication/replica_set.h"
#include "serving/shard_router.h"

using namespace i2mr;

namespace {

constexpr int kVertices = 32;
constexpr int kShards = 2;
constexpr int kReplicasPerShard = 2;
constexpr int kBatch = 6;

std::string VertexKey(int i) { return PaddedNum(i); }

std::vector<KV> RingGraph(int n) {
  std::vector<KV> graph;
  graph.reserve(n);
  for (int i = 0; i < n; ++i) {
    graph.push_back(KV{VertexKey(i), VertexKey((i + 1) % n) + ":1"});
  }
  return graph;
}

// Shortcut-edge additions whose replacement adjacency depends on
// (seed, key) alone: lost-ack retries replayed after later rounds are
// idempotent, and SSSP's monotone min-plus fixpoint makes the converged
// state independent of how chaos regroups deltas into epochs.
std::vector<DeltaKV> RoundDeltas(uint64_t seed, int round) {
  std::vector<DeltaKV> deltas;
  for (int k = 0; k < kBatch; ++k) {
    int i = static_cast<int>((seed + 13 * round + 5 * k) % kVertices);
    int dest = static_cast<int>((i + 2 + (seed + 11 * i) % 9) % kVertices);
    deltas.push_back(DeltaKV{
        DeltaOp::kInsert, VertexKey(i),
        VertexKey((i + 1) % kVertices) + ":1 " + VertexKey(dest) + ":1"});
  }
  return deltas;
}

ShardRouterOptions RouterOptions(MetricsRegistry* metrics,
                                 HealthRegistry* health, bool reset) {
  ShardRouterOptions options;
  options.num_shards = kShards;
  options.workers_per_shard = 2;
  options.cross_shard_exchange = true;
  options.reset = reset;
  options.metrics = metrics;
  options.health = health;
  options.pipeline.spec = sssp::MakeIterSpec("sp", VertexKey(0), 2, 200);
  options.pipeline.engine.filter_threshold = 0.0;
  options.pipeline.engine.mrbg_auto_off_ratio = 2;
  options.pipeline.append_retries = 1;
  options.pipeline.append_retry_backoff_ms = 0.5;
  options.pipeline.degraded_probe_interval_ms = 5;
  return options;
}

bool IsIntegrityError(const Status& st) {
  return st.code() == Status::Code::kCorruption ||
         st.code() == Status::Code::kInternal;
}

std::vector<uint64_t> Seeds() {
  std::vector<uint64_t> seeds;
  if (const char* env = std::getenv("I2MR_CHAOS_SEEDS")) {
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
    }
  }
  if (seeds.empty()) seeds = {11, 12, 13, 14};
  return seeds;
}

struct ChaosSystem {
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<HealthRegistry> health;
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<ReplicaSet> replicas;

  void Close() {
    replicas.reset();
    router.reset();
  }
};

bool OpenSystem(const std::string& root, bool reset, ChaosSystem* sys) {
  if (sys->metrics == nullptr) {
    sys->metrics = std::make_unique<MetricsRegistry>();
    sys->health = std::make_unique<HealthRegistry>(sys->metrics.get());
  }
  auto router = ShardRouter::Open(
      root, "sys", RouterOptions(sys->metrics.get(), sys->health.get(), reset));
  if (!router.ok()) {
    std::fprintf(stderr, "router open: %s\n",
                 router.status().ToString().c_str());
    return false;
  }
  sys->router = std::move(router.value());
  ReplicaSetOptions ro;
  ro.replicas_per_shard = kReplicasPerShard;
  ro.reset = reset;
  auto set =
      ReplicaSet::Open(sys->router.get(), JoinPath(root, "replicas"), ro);
  if (!set.ok()) {
    std::fprintf(stderr, "replica set open: %s\n",
                 set.status().ToString().c_str());
    return false;
  }
  sys->replicas = std::move(set.value());
  return true;
}

struct SeedResult {
  uint64_t seed = 0;
  uint64_t injections = 0;
  int unacked = 0;
  uint64_t degraded_transitions = 0;
  double recovery_ms = 0;
  bool pass = false;
  std::string why;
};

SeedResult RunSeed(uint64_t seed, int rounds) {
  SeedResult res;
  res.seed = seed;
  auto fail = [&res](const std::string& why) {
    res.why = why;
    return res;
  };
  const std::string base =
      bench::BenchRoot("chaos") + "/seed" + std::to_string(seed);
  const std::string sys_root = JoinPath(base, "sys");
  if (!ResetDir(base).ok()) return fail("reset dir");

  ChaosSystem sys;
  if (!OpenSystem(sys_root, /*reset=*/true, &sys)) return fail("open");
  MetricsRegistry twin_metrics;
  HealthRegistry twin_health(&twin_metrics);
  auto twin =
      ShardRouter::Open(JoinPath(base, "twin"), "sys",
                        RouterOptions(&twin_metrics, &twin_health, true));
  if (!twin.ok()) return fail("twin open: " + twin.status().ToString());

  auto graph = RingGraph(kVertices);
  std::vector<KV> state;
  const auto spec = RouterOptions(nullptr, nullptr, true).pipeline.spec;
  for (const auto& kv : graph) {
    state.push_back(KV{kv.key, spec.init_state(kv.key)});
  }
  if (!sys.router->Bootstrap(graph, state).ok()) return fail("bootstrap");
  if (!(*twin)->Bootstrap(graph, state).ok()) return fail("twin bootstrap");

  auto* inj = fault::FaultInjector::Instance();
  fault::ChaosOptions chaos;
  chaos.seed = seed;
  chaos.p_fail = 0.05;
  chaos.p_torn = 0.25;
  chaos.p_latency = 0.02;
  chaos.max_latency_ms = 1.0;
  chaos.path_substr = sys_root;
  inj->StartChaos(chaos);

  std::vector<DeltaKV> unacked;
  for (int round = 0; round < rounds; ++round) {
    for (const DeltaKV& delta : RoundDeltas(seed, round)) {
      if (!(*twin)->Append(delta).ok()) return fail("twin append");
      bool acked = false;
      for (int attempt = 0; attempt < 20 && !acked; ++attempt) {
        auto seq = sys.replicas->Append(delta);
        if (seq.ok()) {
          acked = true;
        } else if (IsIntegrityError(seq.status())) {
          return fail("append integrity: " + seq.status().ToString());
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      if (!acked) unacked.push_back(delta);
    }
    auto epoch = sys.router->RefreshCoordinated();
    if (!epoch.ok() && IsIntegrityError(epoch.status())) {
      return fail("epoch integrity: " + epoch.status().ToString());
    }
    Status shipped = sys.replicas->SyncAll();
    if (!shipped.ok() && IsIntegrityError(shipped)) {
      return fail("ship integrity: " + shipped.ToString());
    }
    for (int i = 0; i < kVertices; i += 5) {
      auto read = sys.replicas->Get(VertexKey(i));
      if (!read.ok() && IsIntegrityError(read.status())) {
        return fail("read integrity: " + read.status().ToString());
      }
    }
    if (!(*twin)->DrainAll().ok()) return fail("twin drain");
  }

  res.injections = inj->injections();
  res.unacked = static_cast<int>(unacked.size());
  inj->Reset();
  const auto lifted = std::chrono::steady_clock::now();

  bool reopened = false;
  for (const DeltaKV& delta : unacked) {
    bool acked = false;
    for (int attempt = 0; attempt < 400 && !acked; ++attempt) {
      auto seq = sys.replicas->Append(delta);
      if (seq.ok()) {
        acked = true;
      } else if (seq.status().code() == Status::Code::kFailedPrecondition &&
                 !reopened) {
        sys.Close();
        if (!OpenSystem(sys_root, /*reset=*/false, &sys)) {
          return fail("recovery reopen");
        }
        reopened = true;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    if (!acked) return fail("append never recovered");
  }
  Status drained;
  for (int attempt = 0; attempt < 200; ++attempt) {
    drained = sys.router->DrainAll();
    if (drained.ok() && sys.router->TotalPending() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!drained.ok()) return fail("drain: " + drained.ToString());
  if (sys.router->TotalPending() != 0) return fail("pending stuck");
  if (sys.router->poisoned()) return fail("router stayed poisoned");
  if (!sys.replicas->SyncAll().ok()) return fail("final ship");
  if (!(*twin)->DrainAll().ok()) return fail("twin final drain");

  auto parity = [&](ShardRouter* got, const char* what) -> std::string {
    for (int i = 0; i < kVertices; ++i) {
      auto expect = (*twin)->Lookup(VertexKey(i));
      auto have = got->Lookup(VertexKey(i));
      if (!expect.ok() || !have.ok() || *have != *expect) {
        return std::string(what) + " diverged at " + VertexKey(i);
      }
    }
    return "";
  };
  std::string bad = parity(sys.router.get(), "router");
  if (!bad.empty()) return fail(bad);
  for (int i = 0; i < kVertices; ++i) {
    auto expect = (*twin)->Lookup(VertexKey(i));
    auto rep = sys.replicas->Get(VertexKey(i));
    if (!expect.ok() || !rep.ok() || *rep != *expect) {
      return fail("replica diverged at " + VertexKey(i));
    }
  }
  res.recovery_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - lifted)
          .count();

  // Degraded-mode entries the storm actually caused: health gauges sum
  // transitions into and out of kDegraded as logged reports.
  for (const auto& h : sys.health->Snapshot()) {
    res.degraded_transitions += h.transitions;
  }

  sys.Close();
  if (!OpenSystem(sys_root, /*reset=*/false, &sys)) return fail("reopen");
  bad = parity(sys.router.get(), "reopened router");
  if (!bad.empty()) return fail(bad);
  sys.Close();

  res.pass = true;
  return res;
}

}  // namespace

int main() {
  bench::Title("Chaos soak: seeded fault storms over a sharded + "
               "replicated pipeline");
  const int rounds = bench::ScaledInt(8);
  const auto seeds = Seeds();
  std::printf("%d seeds x %d rounds | %d vertices, %d shards, %d replicas "
              "per shard\n\n",
              static_cast<int>(seeds.size()), rounds, kVertices, kShards,
              kReplicasPerShard);
  std::printf("%-8s %-12s %-10s %-14s %-12s %s\n", "seed", "injections",
              "unacked", "degraded", "recovery ms", "verdict");

  std::vector<SeedResult> results;
  bool ok = true;
  for (uint64_t seed : seeds) {
    SeedResult r = RunSeed(seed, rounds);
    fault::FaultInjector::Instance()->Reset();
    std::printf("%-8llu %-12llu %-10d %-14llu %-12.1f %s%s\n",
                (unsigned long long)r.seed, (unsigned long long)r.injections,
                r.unacked, (unsigned long long)r.degraded_transitions,
                r.recovery_ms, r.pass ? "pass" : "FAIL: ", r.why.c_str());
    if (!r.pass) ok = false;
    results.push_back(std::move(r));
  }

  std::FILE* json = std::fopen("BENCH_chaos.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"chaos_soak\",\n");
  std::fprintf(json, "  \"vertices\": %d,\n", kVertices);
  std::fprintf(json, "  \"shards\": %d,\n", kShards);
  std::fprintf(json, "  \"replicas_per_shard\": %d,\n", kReplicasPerShard);
  std::fprintf(json, "  \"rounds\": %d,\n", rounds);
  std::fprintf(json, "  \"seeds\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SeedResult& r = results[i];
    std::fprintf(json,
                 "    {\"seed\": %llu, \"injections\": %llu, "
                 "\"unacked\": %d, \"degraded_transitions\": %llu, "
                 "\"recovery_ms\": %.1f, \"pass\": %s}%s\n",
                 (unsigned long long)r.seed, (unsigned long long)r.injections,
                 r.unacked, (unsigned long long)r.degraded_transitions,
                 r.recovery_ms, r.pass ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"pass\": %s\n", ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  bench::Note("\nwrote BENCH_chaos.json");
  return ok ? 0 : 1;
}
