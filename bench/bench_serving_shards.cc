// Sharded serving read latency: pinned epoch-consistent reads while deltas
// stream and coordinated cross-shard epochs commit underneath.
//
// For each shard count we bootstrap one PageRank computation partitioned
// across the shards in coordinated mode (cross_shard_exchange: boundary
// contributions routed between shards, every epoch committed on all
// shards atomically under the barrier), start the background coordinator,
// and stream graph deltas while reader threads serve pinned reads
// (PinSnapshot + point Get). Reported per shard count: read latency
// p50/p99, read throughput, and coordinated epochs committed during the
// read phase — the p99 is what CI gates (reads must stay non-blocking: a
// read that waits on a refresh OR on the barrier commit would blow it up
// by orders of magnitude).
//
// Emits BENCH_serving.json (tracked trajectory point; see
// tools/check_bench_regression.py --key shards).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/pagerank.h"
#include "bench_util.h"
#include "common/codec.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "data/graph_gen.h"
#include "io/env.h"
#include "replication/replica_set.h"
#include "serving/shard_group.h"
#include "serving/shard_router.h"

using namespace i2mr;

namespace {

/// Read latencies land in a shared lock-free Histogram (nanoseconds —
/// the registry-wide convention) instead of per-reader vectors; the
/// percentiles below come from its log-bucketed counts (<= ~9% relative
/// error) and the raw bucket array goes into the JSON for offline
/// distribution diffs.
struct LatencySummary {
  uint64_t reads = 0;
  double p50_read_ms = 0;
  double p95_read_ms = 0;
  double p99_read_ms = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets_ns;
};

LatencySummary Summarize(const Histogram& hist) {
  LatencySummary s;
  s.reads = hist.count();
  s.p50_read_ms = static_cast<double>(hist.p50()) / 1e6;
  s.p95_read_ms = static_cast<double>(hist.p95()) / 1e6;
  s.p99_read_ms = static_cast<double>(hist.p99()) / 1e6;
  s.buckets_ns = hist.NonzeroBuckets();
  return s;
}

void PrintBuckets(std::FILE* json, const LatencySummary& s) {
  std::fprintf(json, "\"latency_buckets_ns\": [");
  for (size_t b = 0; b < s.buckets_ns.size(); ++b) {
    std::fprintf(json, "%s[%llu, %llu]", b > 0 ? ", " : "",
                 (unsigned long long)s.buckets_ns[b].first,
                 (unsigned long long)s.buckets_ns[b].second);
  }
  std::fprintf(json, "]");
}

struct ShardResult {
  int shards = 0;
  LatencySummary lat;
  double reads_per_sec = 0;
  uint64_t epochs_committed = 0;
  uint64_t deltas_applied = 0;
};

StatusOr<ShardResult> MeasureShards(int shards, int num_vertices) {
  ShardResult result;
  result.shards = shards;

  GraphGenOptions gen;
  gen.num_vertices = num_vertices;
  gen.avg_degree = 6;
  auto graph = GenGraph(gen);

  MetricsRegistry metrics;
  ShardRouterOptions options;
  options.num_shards = shards;
  options.workers_per_shard = 2;
  options.cost = bench::PaperCosts();
  options.cross_shard_exchange = true;
  options.metrics = &metrics;
  options.pipeline.spec = pagerank::MakeIterSpec("rank", 2, 60, 1e-6);
  options.pipeline.engine.filter_threshold = 0.1;
  options.pipeline.min_batch = 1;
  options.manager.poll_interval_ms = 2;
  std::string root =
      bench::BenchRoot("serving_shards") + "/s" + std::to_string(shards);
  I2MR_RETURN_IF_ERROR(ResetDir(root));
  auto router = ShardRouter::Open(root, "rank", options);
  if (!router.ok()) return router.status();
  I2MR_RETURN_IF_ERROR(
      (*router)->Bootstrap(graph, bench::UnitState(graph)));
  ShardGroup group(router->get());

  // Coordinated commits publish through the registry (the per-shard
  // manager schedulers are idle in coordinated mode).
  auto commit_counters = [&] {
    uint64_t epochs = 0, deltas = 0;
    for (int s = 0; s < shards; ++s) {
      std::string prefix = "serving.rank.shard" + std::to_string(s);
      epochs += static_cast<uint64_t>(
          metrics.Get(prefix + ".epochs_committed")->value());
      deltas += static_cast<uint64_t>(
          metrics.Get(prefix + ".deltas_applied")->value());
    }
    return std::make_pair(epochs, deltas);
  };
  const uint64_t epochs_before = commit_counters().first;

  // Readers: pinned point reads against rotating probe keys while the
  // writer streams deltas and epochs commit underneath.
  (*router)->Start();
  const int kReaders = 2;
  const int kReadsPerReader = bench::ScaledInt(1500);
  Histogram read_hist;
  std::atomic<bool> failed{false};
  WallTimer read_phase;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < kReadsPerReader && !failed.load(); ++i) {
        const std::string& probe = graph[(r * 7919 + i) % graph.size()].key;
        const int64_t start = NowNanos();
        auto snap = group.PinSnapshot();
        if (!snap.ok() || !snap->Get(probe).ok()) {
          failed.store(true);
          return;
        }
        read_hist.Record(NowNanos() - start);
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 6 && !failed.load(); ++round) {
      GraphDeltaOptions dopt;
      dopt.update_fraction = 0.02;
      dopt.seed = 900 + round;
      auto delta = GenGraphDelta(gen, dopt, &graph);
      if (!(*router)
               ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
               .ok()) {
        failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  });
  for (auto& t : readers) t.join();
  double read_phase_s = read_phase.ElapsedSeconds();
  writer.join();
  (*router)->Stop();
  if (failed.load()) return Status::Internal("serving bench read failed");

  result.lat = Summarize(read_hist);
  result.reads_per_sec =
      read_phase_s > 0 ? result.lat.reads / read_phase_s : 0;
  auto [epochs, deltas] = commit_counters();
  result.epochs_committed = epochs - epochs_before;
  result.deltas_applied = deltas;
  return result;
}

// ---------------------------------------------------------------------------
// Read replicas: aggregate pinned-read throughput vs followers per shard.
//
// Every serving backend (primary or follower) models a fixed per-read
// service time charged under its slot mutex (read_service_ms), so adding
// followers adds real aggregate capacity even on a single-core runner:
// with R reader threads hammering one shard's single primary the reads
// serialize, while primary + 2 followers serve three at a time. Deltas
// stream into the primaries and ship to the followers throughout, so the
// numbers include live shipping, not an idle fleet.
// ---------------------------------------------------------------------------

struct ReplicaResult {
  int replicas = 0;   // followers per shard (0 = primary-only baseline)
  int backends = 0;   // serving slots per shard
  LatencySummary lat;
  double reads_per_sec = 0;
  uint64_t shipped_bytes = 0;
};

StatusOr<ReplicaResult> MeasureReplicas(int followers, int num_vertices) {
  ReplicaResult result;
  result.replicas = followers;
  result.backends = 1 + followers;

  GraphGenOptions gen;
  gen.num_vertices = num_vertices;
  gen.avg_degree = 6;
  auto graph = GenGraph(gen);

  MetricsRegistry metrics;
  ShardRouterOptions options;
  options.num_shards = 2;
  options.workers_per_shard = 2;
  options.cost = bench::PaperCosts();
  options.metrics = &metrics;
  options.pipeline.spec = pagerank::MakeIterSpec("rank", 2, 60, 1e-6);
  options.pipeline.engine.filter_threshold = 0.1;
  options.pipeline.min_batch = 1;
  options.pipeline.log.segment_bytes = 32 << 10;
  options.pipeline.log.archive_purged = true;
  options.pipeline.log.compress_archive = true;  // ship .lzd archives too
  options.manager.poll_interval_ms = 2;
  std::string root = bench::BenchRoot("serving_replicas") + "/f" +
                     std::to_string(followers);
  I2MR_RETURN_IF_ERROR(ResetDir(root));
  auto router = ShardRouter::Open(root, "rank", options);
  if (!router.ok()) return router.status();
  I2MR_RETURN_IF_ERROR((*router)->Bootstrap(graph, bench::UnitState(graph)));

  ReplicaSetOptions ro;
  ro.replicas_per_shard = followers;
  ro.read_service_ms = 0.2;  // simulated per-backend service capacity
  ro.ship_poll_ms = 5;
  ro.max_replica_lag_epochs = 8;
  auto set = ReplicaSet::Open(router->get(), root + "/replicas", ro);
  if (!set.ok()) return set.status();
  I2MR_RETURN_IF_ERROR((*set)->SyncAll());

  (*router)->Start();
  const int kReaders = 8;
  const int kReadsPerReader = bench::ScaledInt(600);
  Histogram read_hist;
  std::atomic<bool> failed{false};
  WallTimer read_phase;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < kReadsPerReader && !failed.load(); ++i) {
        const std::string& probe = graph[(r * 7919 + i) % graph.size()].key;
        const int64_t start = NowNanos();
        if (!(*set)->Get(probe).ok()) {
          failed.store(true);
          return;
        }
        read_hist.Record(NowNanos() - start);
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 4 && !failed.load(); ++round) {
      GraphDeltaOptions dopt;
      dopt.update_fraction = 0.02;
      dopt.seed = 700 + round;
      auto delta = GenGraphDelta(gen, dopt, &graph);
      if (!(*set)
               ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
               .ok()) {
        failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  });
  for (auto& t : readers) t.join();
  double read_phase_s = read_phase.ElapsedSeconds();
  writer.join();
  (*router)->Stop();
  if (failed.load()) return Status::Internal("replica bench read failed");

  result.lat = Summarize(read_hist);
  result.reads_per_sec =
      read_phase_s > 0 ? result.lat.reads / read_phase_s : 0;
  for (int s = 0; s < (*set)->num_shards(); ++s) {
    for (int i = 0; i < followers; ++i) {
      result.shipped_bytes += static_cast<uint64_t>(
          (*set)->replica(s, i)->shipped_bytes()->value());
    }
  }
  return result;
}

}  // namespace

int main() {
  const bool traced = trace::StartFromEnv();
  bench::Title("Sharded serving: pinned read latency while epochs commit");
  const int n = bench::ScaledInt(3000);
  const int kShardCounts[] = {1, 2, 4};

  std::printf("%-8s %-10s %-12s %-12s %-12s %-14s %-10s %s\n", "shards",
              "reads", "p50 ms", "p95 ms", "p99 ms", "reads/sec", "epochs",
              "deltas");
  std::vector<ShardResult> results;
  for (int shards : kShardCounts) {
    auto r = MeasureShards(shards, n);
    if (!r.ok()) {
      std::fprintf(stderr, "shards=%d: %s\n", shards,
                   r.status().ToString().c_str());
      return 1;
    }
    results.push_back(*r);
    std::printf("%-8d %-10llu %-12.4f %-12.4f %-12.4f %-14.0f %-10llu %llu\n",
                r->shards, (unsigned long long)r->lat.reads,
                r->lat.p50_read_ms, r->lat.p95_read_ms, r->lat.p99_read_ms,
                r->reads_per_sec, (unsigned long long)r->epochs_committed,
                (unsigned long long)r->deltas_applied);
  }

  bench::Title("Read replicas: pinned-read throughput vs followers/shard");
  const int kFollowerCounts[] = {0, 1, 2, 4};
  std::printf("%-10s %-10s %-10s %-12s %-12s %-12s %-14s %s\n", "replicas",
              "backends", "reads", "p50 ms", "p95 ms", "p99 ms", "reads/sec",
              "shipped MB");
  std::vector<ReplicaResult> replica_results;
  for (int followers : kFollowerCounts) {
    auto r = MeasureReplicas(followers, n);
    if (!r.ok()) {
      std::fprintf(stderr, "replicas=%d: %s\n", followers,
                   r.status().ToString().c_str());
      return 1;
    }
    replica_results.push_back(*r);
    std::printf("%-10d %-10d %-10llu %-12.4f %-12.4f %-12.4f %-14.0f %.2f\n",
                r->replicas, r->backends, (unsigned long long)r->lat.reads,
                r->lat.p50_read_ms, r->lat.p95_read_ms, r->lat.p99_read_ms,
                r->reads_per_sec, r->shipped_bytes / (1024.0 * 1024.0));
  }

  std::FILE* json = std::fopen("BENCH_serving.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"serving_shards\",\n");
  std::fprintf(json, "  \"workload\": \"pagerank\",\n");
  std::fprintf(json, "  \"num_vertices\": %d,\n", n);
  std::fprintf(json, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ShardResult& r = results[i];
    std::fprintf(json,
                 "    {\"shards\": %d, \"reads\": %llu, "
                 "\"p50_read_ms\": %.4f, \"p95_read_ms\": %.4f, "
                 "\"p99_read_ms\": %.4f, "
                 "\"reads_per_sec\": %.0f, \"epochs_committed\": %llu, "
                 "\"deltas_applied\": %llu, ",
                 r.shards, (unsigned long long)r.lat.reads, r.lat.p50_read_ms,
                 r.lat.p95_read_ms, r.lat.p99_read_ms, r.reads_per_sec,
                 (unsigned long long)r.epochs_committed,
                 (unsigned long long)r.deltas_applied);
    PrintBuckets(json, r.lat);
    std::fprintf(json, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"replica_results\": [\n");
  for (size_t i = 0; i < replica_results.size(); ++i) {
    const ReplicaResult& r = replica_results[i];
    std::fprintf(json,
                 "    {\"replicas\": %d, \"backends\": %d, \"reads\": %llu, "
                 "\"p50_read_ms\": %.4f, \"p95_read_ms\": %.4f, "
                 "\"p99_read_ms\": %.4f, "
                 "\"reads_per_sec\": %.0f, \"shipped_bytes\": %llu, ",
                 r.replicas, r.backends, (unsigned long long)r.lat.reads,
                 r.lat.p50_read_ms, r.lat.p95_read_ms, r.lat.p99_read_ms,
                 r.reads_per_sec, (unsigned long long)r.shipped_bytes);
    PrintBuckets(json, r.lat);
    std::fprintf(json, "}%s\n", i + 1 < replica_results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  bench::Note("\nwrote BENCH_serving.json");
  if (traced) {
    Status exported = trace::ExportFromEnv();
    if (!exported.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   exported.ToString().c_str());
      return 1;
    }
    bench::Note("wrote trace (I2MR_TRACE_JSON)");
  }
  return 0;
}
