// §8.2 "Incremental One-Step Processing": APriori frequent word-pair
// mining. The paper reports MapReduce re-computation at 1608 s vs
// i2MapReduce at 131 s — a 12.3x speedup — with the last week of tweets
// (7.9% of the corpus) as the insertion-only delta.
#include "apps/apriori.h"
#include "bench_util.h"
#include "common/timer.h"
#include "data/text_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

int main() {
  Title("APriori one-step incremental processing (§8.2)");

  TextGenOptions gen;
  gen.num_docs = ScaledInt(800000);
  gen.vocab_size = 3000;
  gen.words_per_doc = 14;
  auto tweets = GenDocs(gen);

  LocalCluster cluster(BenchRoot("apriori"), Workers(), PaperCosts());
  I2MR_CHECK_OK(cluster.dfs()->WriteDataset("tweets", tweets, Workers() * 2));

  auto frequent =
      apriori::FrequentWords(&cluster, "tweets", gen.num_docs / 30);
  I2MR_CHECK(frequent.ok());
  std::printf("corpus: %zu tweets, %zu frequent words\n", tweets.size(),
              frequent->size());

  IncrementalOneStepJob job(&cluster, apriori::MakeSpec("apriori", Workers(),
                                                        *frequent));
  WallTimer initial_timer;
  auto init = job.RunInitial(*cluster.dfs()->Parts("tweets"));
  I2MR_CHECK(init.ok()) << init.status().ToString();
  double initial_ms = initial_timer.ElapsedMillis();

  // The last week's tweets: 7.9% of the corpus, insertion-only (§8.1.5).
  auto delta = GenDocsDelta(gen, 0.079, 99, &tweets);
  I2MR_CHECK_OK(cluster.dfs()->WriteDeltaDataset("delta", delta, Workers()));

  // Re-computation baseline: run the full counting job from scratch over
  // the grown corpus.
  double recompute_ms;
  {
    LocalCluster recluster(BenchRoot("apriori_recomp"), Workers(), PaperCosts());
    I2MR_CHECK_OK(recluster.dfs()->WriteDataset("tweets", tweets, Workers() * 2));
    IncrementalOneStepJob rejob(
        &recluster, apriori::MakeSpec("apriori", Workers(), *frequent));
    WallTimer timer;
    auto rerun = rejob.RunInitial(*recluster.dfs()->Parts("tweets"));
    I2MR_CHECK(rerun.ok());
    recompute_ms = timer.ElapsedMillis();
  }

  // i2MapReduce: fold the delta into the preserved results (accumulator
  // Reduce, §3.5 — no MRBGraph needed).
  WallTimer incr_timer;
  auto incr = job.RunIncremental(*cluster.dfs()->Parts("delta"));
  I2MR_CHECK(incr.ok()) << incr.status().ToString();
  double incremental_ms = incr_timer.ElapsedMillis();

  std::printf("\n%-28s %12s\n", "solution", "time");
  std::printf("%-28s %10.0fms\n", "MapReduce re-computation", recompute_ms);
  std::printf("%-28s %10.0fms\n", "i2MapReduce incremental", incremental_ms);
  std::printf("\nspeedup: %.1fx   (paper: 1608s vs 131s = 12.3x)\n",
              recompute_ms / incremental_ms);
  std::printf("initial run (for context): %.0fms; delta: %zu tweets (7.9%%)\n",
              initial_ms, delta.size());
  return 0;
}
