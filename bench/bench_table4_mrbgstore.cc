// Table 4: performance optimizations in the MRBG-Store, measured on
// incremental PageRank. The four read strategies are enabled one by one:
//   index-only           - exact I/O per chunk: smallest rsize, most reads
//   single-fix-window    - one window thrashes across sorted batches:
//                          enormous rsize (reads useless data)
//   multi-fix-window     - per-batch windows: far fewer reads
//   multi-dynamic-window - Algorithm 1 windows: fewer bytes than fixed,
//                          best merge time (the i2MapReduce default)
//
// Each strategy is measured on both on-disk layouts: the raw single-file
// layout (paper parity — what Table 4 in the paper describes) and the
// log-structured segment layout (the engine default), whose compaction
// keeps superseded chunk versions from accumulating across refreshes.
#include "apps/pagerank.h"
#include "bench_util.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

int main() {
  Title("Table 4: MRBG-Store read strategies (incremental PageRank)");

  GraphGenOptions gen;
  gen.num_vertices = ScaledInt(10000);
  gen.avg_degree = 10;

  struct Row {
    ReadMode mode;
    bool log_structured = false;
    uint64_t reads = 0;
    double rsize_mb = 0;
    double merge_ms = 0;
    double refresh_ms = 0;
    double mrbg_mb = 0;  // on-disk footprint after the last refresh
  };
  std::vector<Row> rows;

  for (bool log_structured : {false, true}) {
    for (ReadMode mode :
         {ReadMode::kIndexOnly, ReadMode::kSingleFixedWindow,
          ReadMode::kMultiFixedWindow, ReadMode::kMultiDynamicWindow}) {
      auto graph = GenGraph(gen);
      std::string root = std::string("table4_") +
                         (log_structured ? "ls_" : "raw_") +
                         ReadModeName(mode);
      LocalCluster cluster(BenchRoot(root), Workers(), PaperCosts());
      IncrIterOptions options;
      options.filter_threshold = 0.1;
      options.store_options.read_mode = mode;
      options.store_options.fixed_window_bytes = 64u << 10;
      // Keep the paper's read-strategy comparison pure: the engine-default
      // appended-tail cache would absorb reads identically across all modes.
      options.store_options.tail_cache_bytes = 0;
      options.store_options.log_structured = log_structured;
      options.store_options.background_compaction = log_structured;
      IncrementalIterativeEngine engine(
          &cluster, pagerank::MakeIterSpec("table4", Workers(), 40, 1e-3),
          options);
      I2MR_CHECK(engine.RunInitial(graph, UnitState(graph)).ok());

      // Several refreshes so the MRBGraph file accumulates multiple sorted
      // batches (the multi-window motivation, §5.2).
      Row row;
      row.mode = mode;
      row.log_structured = log_structured;
      for (int round = 0; round < 3; ++round) {
        GraphDeltaOptions dopt;
        dopt.update_fraction = 0.1;
        dopt.seed = 100 + round;
        auto delta = GenGraphDelta(gen, dopt, &graph);
        auto refresh = engine.RunIncremental(delta);
        I2MR_CHECK(refresh.ok()) << refresh.status().ToString();
        row.reads += refresh->store_io_reads;
        row.rsize_mb += refresh->store_bytes_read / 1e6;
        for (const auto& it : refresh->iterations) row.merge_ms += it.merge_ms;
        row.refresh_ms += refresh->wall_ms;
      }
      auto bytes = engine.MrbgFileBytes();
      if (bytes.ok()) row.mrbg_mb = *bytes / 1e6;
      rows.push_back(row);
    }
  }

  for (bool log_structured : {false, true}) {
    std::printf("\n-- %s layout %s\n",
                log_structured ? "log-structured" : "raw",
                log_structured ? "(engine default; segments + compaction)"
                               : "(paper parity, Table 4)");
    std::printf("%-22s %10s %12s %12s %12s %12s\n", "technique", "# reads",
                "rsize (MB)", "merge time", "refresh", "mrbg (MB)");
    for (const auto& r : rows) {
      if (r.log_structured != log_structured) continue;
      std::printf("%-22s %10llu %12.1f %10.0fms %10.0fms %12.1f\n",
                  ReadModeName(r.mode),
                  static_cast<unsigned long long>(r.reads), r.rsize_mb,
                  r.merge_ms, r.refresh_ms, r.mrbg_mb);
    }
  }
  std::printf(
      "\npaper shape (Table 4): index-only has the smallest rsize but the\n"
      "most reads; single-fix-window reads vastly more bytes (obsolete\n"
      "chunks of other batches); multi-dynamic-window needs fewer bytes\n"
      "than multi-fix-window and achieves the best merge time. The\n"
      "log-structured layout matches the raw read behaviour while its\n"
      "compaction keeps the on-disk footprint bounded across refreshes.\n");
  return 0;
}
