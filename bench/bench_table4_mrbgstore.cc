// Table 4: performance optimizations in the MRBG-Store, measured on
// incremental PageRank. The four read strategies are enabled one by one:
//   index-only           - exact I/O per chunk: smallest rsize, most reads
//   single-fix-window    - one window thrashes across sorted batches:
//                          enormous rsize (reads useless data)
//   multi-fix-window     - per-batch windows: far fewer reads
//   multi-dynamic-window - Algorithm 1 windows: fewer bytes than fixed,
//                          best merge time (the i2MapReduce default)
#include "apps/pagerank.h"
#include "bench_util.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

int main() {
  Title("Table 4: MRBG-Store read strategies (incremental PageRank)");

  GraphGenOptions gen;
  gen.num_vertices = ScaledInt(10000);
  gen.avg_degree = 10;

  struct Row {
    ReadMode mode;
    uint64_t reads = 0;
    double rsize_mb = 0;
    double merge_ms = 0;
    double refresh_ms = 0;
  };
  std::vector<Row> rows;

  for (ReadMode mode :
       {ReadMode::kIndexOnly, ReadMode::kSingleFixedWindow,
        ReadMode::kMultiFixedWindow, ReadMode::kMultiDynamicWindow}) {
    auto graph = GenGraph(gen);
    LocalCluster cluster(BenchRoot(std::string("table4_") + ReadModeName(mode)),
                         Workers(), PaperCosts());
    IncrIterOptions options;
    options.filter_threshold = 0.1;
    options.store_options.read_mode = mode;
    options.store_options.fixed_window_bytes = 64u << 10;
    // Keep the paper's read-strategy comparison pure: the engine-default
    // appended-tail cache would absorb reads identically across all modes.
    options.store_options.tail_cache_bytes = 0;
    IncrementalIterativeEngine engine(
        &cluster, pagerank::MakeIterSpec("table4", Workers(), 40, 1e-3),
        options);
    I2MR_CHECK(engine.RunInitial(graph, UnitState(graph)).ok());

    // Several refreshes so the MRBGraph file accumulates multiple sorted
    // batches (the multi-window motivation, §5.2).
    Row row;
    row.mode = mode;
    for (int round = 0; round < 3; ++round) {
      GraphDeltaOptions dopt;
      dopt.update_fraction = 0.1;
      dopt.seed = 100 + round;
      auto delta = GenGraphDelta(gen, dopt, &graph);
      auto refresh = engine.RunIncremental(delta);
      I2MR_CHECK(refresh.ok()) << refresh.status().ToString();
      row.reads += refresh->store_io_reads;
      row.rsize_mb += refresh->store_bytes_read / 1e6;
      for (const auto& it : refresh->iterations) row.merge_ms += it.merge_ms;
      row.refresh_ms += refresh->wall_ms;
    }
    rows.push_back(row);
  }

  std::printf("\n%-22s %10s %12s %12s %12s\n", "technique", "# reads",
              "rsize (MB)", "merge time", "refresh");
  for (const auto& r : rows) {
    std::printf("%-22s %10llu %12.1f %10.0fms %10.0fms\n", ReadModeName(r.mode),
                static_cast<unsigned long long>(r.reads), r.rsize_mb,
                r.merge_ms, r.refresh_ms);
  }
  std::printf(
      "\npaper shape (Table 4): index-only has the smallest rsize but the\n"
      "most reads; single-fix-window reads vastly more bytes (obsolete\n"
      "chunks of other batches); multi-dynamic-window needs fewer bytes\n"
      "than multi-fix-window and achieves the best merge time.\n");
  return 0;
}
