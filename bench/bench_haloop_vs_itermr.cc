// §8.6 (HaLoop vs iterMR): PageRank re-computation across the Table-5
// graph sizes on PlainMR (Algorithm 2, one job per iteration), HaLoop
// (Algorithm 5, two jobs per iteration with structure caching) and iterMR
// (single phase with Project-based co-partitioning).
//
// Paper: HaLoop's extra join job makes it *slower* than plain MapReduce on
// PageRank — "the profit of caching cannot compensate for the extra cost
// when the structure data is not big enough" — while iterMR avoids the
// join entirely.
#include "apps/pagerank.h"
#include "baselines/haloop_driver.h"
#include "baselines/plain_driver.h"
#include "bench_util.h"
#include "common/codec.h"
#include "common/timer.h"
#include "core/iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

namespace {

constexpr int kIterations = 8;

}  // namespace

int main() {
  Title("§8.6: HaLoop vs iterMR vs PlainMR (PageRank, Table 5 sizes)");

  struct Size {
    const char* name;
    int vertices;
  };
  const Size sizes[] = {{"ClueWeb-xs", 2000},
                        {"ClueWeb-s", 8000},
                        {"ClueWeb-m", 20000}};

  std::printf("\n%-12s %10s %12s %12s %12s\n", "data set", "pages", "PlainMR",
              "HaLoop", "iterMR");
  for (const auto& size : sizes) {
    GraphGenOptions gen;
    gen.num_vertices = static_cast<uint64_t>(ScaledInt(size.vertices));
    gen.avg_degree = 10;
    auto graph = GenGraph(gen);

    double plain_ms;
    {
      LocalCluster cluster(BenchRoot(std::string("h86p_") + size.name),
                           Workers(), PaperCosts());
      std::vector<KV> mixed;
      for (const auto& kv : graph) {
        mixed.push_back(KV{kv.key, pagerank::MixedValue(kv.value, 1.0)});
      }
      I2MR_CHECK_OK(cluster.dfs()->WriteDataset("in", mixed, Workers()));
      PlainIterSpec spec;
      spec.name = "plain";
      spec.mapper = pagerank::PlainMapper();
      spec.reducer = pagerank::PlainReducer();
      spec.num_reduce_tasks = Workers();
      spec.num_iterations = kIterations;
      auto result = RunPlainIterations(&cluster, spec, "in");
      I2MR_CHECK(result.ok());
      plain_ms = result.wall_ms;
    }

    double haloop_ms;
    {
      LocalCluster cluster(BenchRoot(std::string("h86h_") + size.name),
                           Workers(), PaperCosts());
      std::vector<KV> structure, state;
      for (const auto& kv : graph) {
        structure.push_back(KV{kv.key, "S" + kv.value});
        state.push_back(KV{kv.key, "R1"});
      }
      I2MR_CHECK_OK(cluster.dfs()->WriteDataset("struct", structure, Workers()));
      I2MR_CHECK_OK(cluster.dfs()->WriteDataset("state", state, Workers()));
      TwoJobIterSpec spec;
      spec.name = "haloop";
      spec.mapper1 = pagerank::HaLoopIdentityMapper();
      spec.reducer1 = pagerank::HaLoopJoinReducer();
      spec.mapper2 = pagerank::HaLoopIdentityMapper();
      spec.reducer2 = pagerank::HaLoopSumReducer();
      spec.num_reduce_tasks = Workers();
      spec.num_iterations = kIterations;
      auto result = RunTwoJobIterations(&cluster, spec, "struct", "state");
      I2MR_CHECK(result.ok());
      haloop_ms = result.wall_ms;
    }

    double itermr_ms;
    {
      LocalCluster cluster(BenchRoot(std::string("h86i_") + size.name),
                           Workers(), PaperCosts());
      auto spec = pagerank::MakeIterSpec("itermr", Workers(), kIterations, 0);
      IterativeEngine engine(&cluster, spec);
      I2MR_CHECK_OK(engine.Prepare(graph, UnitState(graph)));
      WallTimer timer;
      I2MR_CHECK(engine.Run().ok());
      itermr_ms = timer.ElapsedMillis();
    }

    std::printf("%-12s %10zu %10.0fms %10.0fms %10.0fms\n", size.name,
                graph.size(), plain_ms, haloop_ms, itermr_ms);
  }
  std::printf(
      "\npaper shape: HaLoop > PlainMR at every size (extra join job per\n"
      "iteration); iterMR well below both.\n");
  return 0;
}
