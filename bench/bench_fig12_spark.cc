// Figure 12 (§8.7): PageRank runtime of PlainMR vs iterMR vs a Spark-like
// in-memory engine across four graph sizes (ClueWeb-xs/s/m/l analogues).
// Spark wins while the working set fits its memory budget; once input +
// intermediate data exceed the budget it spills and degrades below iterMR
// (the paper's crossover on ClueWeb-l).
#include "apps/pagerank.h"
#include "baselines/plain_driver.h"
#include "baselines/spark_sim.h"
#include "bench_util.h"
#include "common/codec.h"
#include "common/timer.h"
#include "core/iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

namespace {

constexpr int kIterations = 10;

double RunPlain(const std::vector<KV>& graph, const std::string& tag) {
  LocalCluster cluster(BenchRoot("fig12_plain_" + tag), Workers(), PaperCosts());
  std::vector<KV> mixed;
  for (const auto& kv : graph) {
    mixed.push_back(KV{kv.key, pagerank::MixedValue(kv.value, 1.0)});
  }
  I2MR_CHECK_OK(cluster.dfs()->WriteDataset("in", mixed, Workers()));
  PlainIterSpec spec;
  spec.name = "fig12_plain";
  spec.mapper = pagerank::PlainMapper();
  spec.reducer = pagerank::PlainReducer();
  spec.num_reduce_tasks = Workers();
  spec.num_iterations = kIterations;
  auto result = RunPlainIterations(&cluster, spec, "in");
  I2MR_CHECK(result.ok());
  return result.wall_ms;
}

double RunIterMr(const std::vector<KV>& graph, const std::string& tag) {
  LocalCluster cluster(BenchRoot("fig12_itermr_" + tag), Workers(), PaperCosts());
  auto spec = pagerank::MakeIterSpec("fig12_itermr", Workers(), kIterations, 0);
  IterativeEngine engine(&cluster, spec);
  I2MR_CHECK_OK(engine.Prepare(graph, UnitState(graph)));
  WallTimer timer;
  I2MR_CHECK(engine.Run().ok());
  return timer.ElapsedMillis();
}

double RunSpark(const std::vector<KV>& graph, const std::string& tag,
                size_t memory_budget, uint64_t* spilled_bytes) {
  ThreadPool pool(Workers());
  sparksim::Options options;
  options.num_partitions = Workers();
  options.memory_budget_bytes = memory_budget;
  options.spill_dir = BenchRoot("fig12_spark_" + tag);
  options.pool = &pool;
  sparksim::SparkSim spark(options);

  WallTimer timer;
  auto links = spark.Parallelize(graph);
  I2MR_CHECK(links.ok());
  std::vector<KV> rank0 = UnitState(graph);
  auto ranks = spark.Parallelize(rank0);
  I2MR_CHECK(ranks.ok());

  for (int it = 0; it < kIterations; ++it) {
    auto contribs = spark.JoinFlatMap(
        *links, *ranks,
        [](const std::string&, const std::string& adj, const std::string& rank,
           std::vector<KV>* out) {
          auto dests = ParseAdjacency(adj);
          if (dests.empty()) return;
          double share = *ParseDouble(rank) / dests.size();
          std::string enc = FormatDouble(share);
          for (const auto& j : dests) out->push_back({j, enc});
        });
    I2MR_CHECK(contribs.ok());
    auto summed = spark.ReduceByKey(
        *contribs, [](const std::string& a, const std::string& b) {
          return FormatDouble(*ParseDouble(a) + *ParseDouble(b));
        });
    I2MR_CHECK(summed.ok());
    auto damped = spark.FlatMap(*summed, [](const KV& kv, std::vector<KV>* out) {
      out->push_back(
          {kv.key, FormatDouble(0.85 * *ParseDouble(kv.value) + 0.15)});
    });
    I2MR_CHECK(damped.ok());
    ranks = *damped;
  }
  auto result = spark.Collect(*ranks);
  I2MR_CHECK(result.ok());
  *spilled_bytes = spark.stats().spilled_bytes;
  return timer.ElapsedMillis();
}

}  // namespace

int main() {
  Title("Figure 12: PlainMR vs iterMR vs Spark across graph sizes");

  // ClueWeb-xs/s/m/l analogues; Spark memory budget fits ~m but not l.
  struct Size {
    const char* name;
    int vertices;
  };
  const Size sizes[] = {{"ClueWeb-xs", 1500},
                        {"ClueWeb-s", 6000},
                        {"ClueWeb-m", 24000},
                        {"ClueWeb-l", 48000}};
  const size_t kSparkBudget = static_cast<size_t>(20.0 * Scale()) << 20;

  std::printf("\nSpark memory budget: %.1f MB; %d PageRank iterations each\n",
              kSparkBudget / 1e6, kIterations);
  std::printf("\n%-12s %10s %12s %12s %12s %14s\n", "data set", "pages",
              "PlainMR", "iterMR", "Spark", "Spark spilled");
  for (const auto& size : sizes) {
    GraphGenOptions gen;
    gen.num_vertices = static_cast<uint64_t>(ScaledInt(size.vertices));
    gen.avg_degree = 10;
    auto graph = GenGraph(gen);
    double plain = RunPlain(graph, size.name);
    double itermr = RunIterMr(graph, size.name);
    uint64_t spilled = 0;
    double spark = RunSpark(graph, size.name, kSparkBudget, &spilled);
    std::printf("%-12s %10zu %10.0fms %10.0fms %10.0fms %11.1fMB\n", size.name,
                graph.size(), plain, itermr, spark, spilled / 1e6);
  }
  std::printf(
      "\npaper shape: Spark fastest on the small sets (in-memory, no job\n"
      "startup); iterMR ~2.5x faster than PlainMR throughout; on the\n"
      "largest set Spark exceeds its memory and falls behind iterMR.\n");
  return 0;
}
