// Long-history soak for the log-structured MRBG store: hundreds of pipeline
// epochs at a small, fixed delta rate. Without compaction the store
// accumulates one sorted batch per refresh and merge cost grows with
// epoch-history length; with the segmented log + background compaction it
// must stay flat. The bench asserts that (and that segment files and file
// descriptors do not leak), exits non-zero on violation, and emits
// BENCH_soak.json for the nightly CI artifact.
//
// Runs ~2 minutes at default scale; the nightly job runs it as-is, and
// I2MR_SOAK_EPOCHS can raise the epoch count for manual deep soaks.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/pagerank.h"
#include "bench_util.h"
#include "data/graph_gen.h"
#include "io/env.h"
#include "mr/cluster.h"
#include "pipeline/pipeline.h"

using namespace i2mr;

namespace {

/// Open file descriptors of this process (leak canary).
int CountOpenFds() {
  std::error_code ec;
  int n = 0;
  for (auto it = std::filesystem::directory_iterator("/proc/self/fd", ec);
       !ec && it != std::filesystem::end(it); it.increment(ec)) {
    ++n;
  }
  return n;
}

/// MRBG segment files anywhere under `root` (engine dirs + linked epoch
/// snapshots). Epoch GC unlinks old snapshots and compaction unlinks
/// victims, so this must plateau instead of growing with epoch count.
int CountSegmentFiles(const std::string& root) {
  std::error_code ec;
  int n = 0;
  for (auto it = std::filesystem::recursive_directory_iterator(root, ec);
       !ec && it != std::filesystem::end(it); it.increment(ec)) {
    if (it->is_regular_file(ec) &&
        it->path().filename().string().rfind("seg-", 0) == 0) {
      ++n;
    }
  }
  return n;
}

double Mean(const std::vector<double>& v, size_t begin, size_t end) {
  double sum = 0;
  size_t n = 0;
  for (size_t i = begin; i < end && i < v.size(); ++i, ++n) sum += v[i];
  return n > 0 ? sum / n : 0;
}

}  // namespace

int main() {
  bench::Title("MRBG soak: merge cost vs epoch-history length");

  int epochs = 120;
  if (const char* e = std::getenv("I2MR_SOAK_EPOCHS")) {
    int v = std::atoi(e);
    if (v > 0) epochs = v;
  }
  const double kDeltaRate = 0.02;
  const std::string root = bench::BenchRoot("soak_mrbg");

  GraphGenOptions gen;
  gen.num_vertices = bench::ScaledInt(1500);
  gen.avg_degree = 6;
  auto graph = GenGraph(gen);

  LocalCluster cluster(root, bench::Workers(), bench::PaperCosts());
  PipelineOptions options;
  options.spec = pagerank::MakeIterSpec("soak", bench::Workers(), 50, 1e-5);
  options.engine.filter_threshold = 0.1;
  auto pipeline = Pipeline::Open(&cluster, "soak", options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "open: %s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  if (!(*pipeline)->Bootstrap(graph, bench::UnitState(graph)).ok()) return 1;

  std::printf("graph: %zu pages | %d epochs at delta rate %.2f\n\n",
              graph.size(), epochs, kDeltaRate);
  std::printf("%-8s %-12s %-12s %-12s %-10s %s\n", "epoch", "refresh ms",
              "merge ms", "reduce ms", "segments", "fds");

  std::vector<double> merge_ms, reduce_ms, refresh_ms;
  int fds_baseline = 0, segs_baseline = 0;
  uint64_t delta_seed = 5000;
  for (int e = 1; e <= epochs; ++e) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = kDeltaRate;
    dopt.seed = delta_seed++;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    if (!(*pipeline)
             ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
             .ok()) {
      return 1;
    }
    auto stats = (*pipeline)->RunEpoch();
    if (!stats.ok()) {
      std::fprintf(stderr, "epoch %d: %s\n", e,
                   stats.status().ToString().c_str());
      return 1;
    }
    merge_ms.push_back(stats->refresh_merge_ms);
    reduce_ms.push_back(stats->refresh_reduce_ms);
    refresh_ms.push_back(stats->refresh_ms);
    if (e == 10) {
      // Baselines taken after warm-up: open stores, serving snapshots and
      // a steady epoch-GC window all exist by now.
      fds_baseline = CountOpenFds();
      segs_baseline = CountSegmentFiles(root);
    }
    if (e <= 4 || e % 20 == 0 || e == epochs) {
      std::printf("%-8d %-12.1f %-12.1f %-12.1f %-10d %d\n", e,
                  stats->refresh_ms, stats->refresh_merge_ms,
                  stats->refresh_reduce_ms, CountSegmentFiles(root),
                  CountOpenFds());
    }
  }

  const int fds_final = CountOpenFds();
  const int segs_final = CountSegmentFiles(root);

  // Flatness: mean merge cost late in the run vs shortly after bootstrap.
  // Early window starts at epoch 4 (epochs 1-3 still warm caches); late
  // window is the last 10 epochs.
  double early = Mean(merge_ms, 3, 13);
  double late = Mean(merge_ms, merge_ms.size() - 10, merge_ms.size());
  double ratio = early > 0 ? late / early : 0;

  std::printf("\nmerge ms: epochs 4-13 mean %.2f | last 10 mean %.2f | "
              "ratio %.2fx (limit 1.3x)\n", early, late, ratio);
  std::printf("segments: epoch-10 %d | final %d (limit +%d)\n",
              segs_baseline, segs_final, 16);
  std::printf("fds: epoch-10 %d | final %d (limit +%d)\n", fds_baseline,
              fds_final, 8);

  bool ok = true;
  if (ratio > 1.3) {
    std::fprintf(stderr,
                 "FAIL: merge cost grew %.2fx over %d epochs (limit 1.3x) — "
                 "compaction is not keeping history bounded\n",
                 ratio, epochs);
    ok = false;
  }
  if (segs_final > segs_baseline + 16) {
    std::fprintf(stderr, "FAIL: segment files leaked (%d -> %d)\n",
                 segs_baseline, segs_final);
    ok = false;
  }
  if (fds_final > fds_baseline + 8) {
    std::fprintf(stderr, "FAIL: file descriptors leaked (%d -> %d)\n",
                 fds_baseline, fds_final);
    ok = false;
  }

  std::FILE* json = std::fopen("BENCH_soak.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"soak_mrbg\",\n");
  std::fprintf(json, "  \"num_vertices\": %llu,\n",
               (unsigned long long)gen.num_vertices);
  std::fprintf(json, "  \"epochs\": %d,\n", epochs);
  std::fprintf(json, "  \"delta_rate\": %.3f,\n", kDeltaRate);
  std::fprintf(json, "  \"merge_ms_early\": %.2f,\n", early);
  std::fprintf(json, "  \"merge_ms_late\": %.2f,\n", late);
  std::fprintf(json, "  \"merge_flatness_ratio\": %.3f,\n", ratio);
  std::fprintf(json, "  \"refresh_ms_late\": %.2f,\n",
               Mean(refresh_ms, refresh_ms.size() - 10, refresh_ms.size()));
  std::fprintf(json, "  \"reduce_ms_late\": %.2f,\n",
               Mean(reduce_ms, reduce_ms.size() - 10, reduce_ms.size()));
  std::fprintf(json, "  \"segments_epoch10\": %d,\n", segs_baseline);
  std::fprintf(json, "  \"segments_final\": %d,\n", segs_final);
  std::fprintf(json, "  \"fds_epoch10\": %d,\n", fds_baseline);
  std::fprintf(json, "  \"fds_final\": %d,\n", fds_final);
  std::fprintf(json, "  \"merge_ms\": [");
  for (size_t i = 0; i < merge_ms.size(); ++i) {
    std::fprintf(json, "%s%.2f", i > 0 ? ", " : "", merge_ms[i]);
  }
  std::fprintf(json, "],\n");
  std::fprintf(json, "  \"pass\": %s\n", ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  bench::Note("\nwrote BENCH_soak.json");
  return ok ? 0 : 1;
}
