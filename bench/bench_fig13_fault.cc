// Figure 13 (§8.8): fault recovery during incremental PageRank. Three
// prime-task failures are injected at different iterations; the engine
// recovers each from the per-iteration checkpoints (state data + MRBGraph
// file on the Dfs, §6.1) and the final result is bit-identical to a
// failure-free run. The paper reports recovery within ~12 s per failure on
// EC2; here recovery = restore checkpoint + re-run the task.
#include "apps/pagerank.h"
#include "bench_util.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

int main() {
  Title("Figure 13: fault recovery in incremental PageRank (§6.1)");

  GraphGenOptions gen;
  gen.num_vertices = ScaledInt(8000);
  gen.avg_degree = 8;

  auto run = [&](bool inject, std::vector<RecoveryEvent>* recoveries,
                 double* wall_ms) {
    auto graph = GenGraph(gen);
    LocalCluster cluster(BenchRoot(inject ? "fig13_faulty" : "fig13_clean"),
                         Workers(), PaperCosts());
    IncrIterOptions options;
    options.filter_threshold = 0.1;
    options.checkpoint_each_iteration = true;
    if (inject) {
      options.fail_hook = [](int iteration, TaskId::Kind kind, int partition) {
        return (iteration == 2 && kind == TaskId::Kind::kMap && partition == 1) ||
               (iteration == 3 && kind == TaskId::Kind::kReduce && partition == 0) ||
               (iteration == 4 && kind == TaskId::Kind::kMap && partition == 3);
      };
    }
    IncrementalIterativeEngine engine(
        &cluster, pagerank::MakeIterSpec("fig13", Workers(), 40, 1e-3),
        options);
    I2MR_CHECK(engine.RunInitial(graph, UnitState(graph)).ok());
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.1;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    auto refresh = engine.RunIncremental(delta);
    I2MR_CHECK(refresh.ok()) << refresh.status().ToString();
    if (recoveries != nullptr) *recoveries = refresh->recoveries;
    *wall_ms = refresh->wall_ms;
    auto state = engine.StateSnapshot();
    I2MR_CHECK(state.ok());
    return *state;
  };

  double clean_ms = 0, faulty_ms = 0;
  auto clean = run(false, nullptr, &clean_ms);
  std::vector<RecoveryEvent> recoveries;
  auto faulty = run(true, &recoveries, &faulty_ms);

  std::printf("\ninjected failures and recoveries:\n");
  std::printf("%-12s %-14s %-10s %14s\n", "iteration", "task", "partition",
              "recovery");
  for (const auto& ev : recoveries) {
    std::printf("%-12d %-14s %-10d %12.1fms\n", ev.iteration,
                ev.kind == TaskId::Kind::kMap ? "prime Map" : "prime Reduce",
                ev.partition, ev.recovery_ms);
  }
  std::printf("\nrefresh runtime: %.0f ms clean vs %.0f ms with failures "
              "(+%.0f%%)\n", clean_ms, faulty_ms,
              100.0 * (faulty_ms - clean_ms) / clean_ms);
  std::printf("final state identical to failure-free run: %s\n",
              clean == faulty ? "YES" : "NO (BUG)");
  std::printf(
      "\npaper shape: all failed tasks recover quickly (EC2: <12 s each)\n"
      "without significantly prolonging the computation.\n");
  return clean == faulty ? 0 : 1;
}
