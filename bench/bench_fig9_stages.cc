// Figure 9: run time of the individual MapReduce stages (map / shuffle /
// sort / reduce) across all iterations of PageRank, for PlainMR
// re-computation, iterMR re-computation, and i2MapReduce incremental
// processing.
//
// Paper shape: iterMR cuts map ~51% and shuffle ~74% of PlainMR (structure
// separation + caching); i2MR cuts map ~98%, shuffle ~95% and nearly all
// sort, but its reduce stage is *slower* than iterMR's because it pays for
// MRBG-Store access.
#include "apps/pagerank.h"
#include "baselines/plain_driver.h"
#include "bench_util.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

namespace {

struct Stages {
  double map = 0, shuffle = 0, sort = 0, reduce = 0;
};

void AddIterations(const std::vector<IterationStats>& iterations, Stages* s) {
  for (const auto& it : iterations) {
    s->map += it.map_ms;
    s->shuffle += it.shuffle_ms;
    s->sort += it.sort_ms;
    s->reduce += it.reduce_ms;
  }
}

}  // namespace

int main() {
  Title("Figure 9: per-stage time of PageRank across all iterations");

  GraphGenOptions gen;
  gen.num_vertices = ScaledInt(8000);
  gen.avg_degree = 8;
  // The paper substitutes long node identifiers into ClueWeb "to make the
  // structure data larger without changing the graph structure" (§8.1.4);
  // wide ids reproduce the structure-heavy shuffle that iterMR avoids.
  gen.id_width = 28;
  gen.payload_bytes = 360;
  auto graph = GenGraph(gen);
  auto updated = graph;
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &updated);

  const int kIterations = 12;

  // --- PlainMR ---------------------------------------------------------
  Stages plain;
  {
    LocalCluster cluster(BenchRoot("fig9_plain"), Workers(), PaperCosts());
    std::vector<KV> mixed;
    for (const auto& kv : updated) {
      mixed.push_back(KV{kv.key, pagerank::MixedValue(kv.value, 1.0)});
    }
    I2MR_CHECK_OK(cluster.dfs()->WriteDataset("in", mixed, Workers()));
    PlainIterSpec spec;
    spec.name = "fig9_plain";
    spec.mapper = pagerank::PlainMapper();
    spec.reducer = pagerank::PlainReducer();
    spec.num_reduce_tasks = Workers();
    spec.num_iterations = kIterations;
    auto result = RunPlainIterations(&cluster, spec, "in");
    I2MR_CHECK(result.ok());
    plain.map = result.metrics->map_ms();
    plain.shuffle = result.metrics->shuffle_ms();
    plain.sort = result.metrics->sort_ms();
    plain.reduce = result.metrics->reduce_ms();
  }

  // --- iterMR ------------------------------------------------------------
  Stages itermr;
  {
    LocalCluster cluster(BenchRoot("fig9_itermr"), Workers(), PaperCosts());
    auto spec = pagerank::MakeIterSpec("fig9_itermr", Workers(), kIterations, 0);
    IterativeEngine engine(&cluster, spec);
    I2MR_CHECK_OK(engine.Prepare(updated, UnitState(updated)));
    auto stats = engine.Run();
    I2MR_CHECK(stats.ok());
    AddIterations(*stats, &itermr);
  }

  // --- i2MapReduce incremental -------------------------------------------
  Stages i2mr;
  {
    LocalCluster cluster(BenchRoot("fig9_i2mr"), Workers(), PaperCosts());
    IncrIterOptions options;
    options.filter_threshold = 0.1;
    IncrementalIterativeEngine engine(
        &cluster, pagerank::MakeIterSpec("fig9_i2mr", Workers(), 40, 1e-3),
        options);
    I2MR_CHECK(engine.RunInitial(graph, UnitState(graph)).ok());
    auto refresh = engine.RunIncremental(delta);
    I2MR_CHECK(refresh.ok());
    AddIterations(refresh->iterations, &i2mr);
    double merge_ms = 0;
    for (const auto& it : refresh->iterations) merge_ms += it.merge_ms;
    std::printf("(i2MR reduce stage includes %.0f ms of MRBG-Store merge)\n",
                merge_ms);
  }

  std::printf("\n%-10s %14s %14s %14s\n", "stage", "PlainMR", "iterMR",
              "i2MR incr");
  auto row = [&](const char* name, double p, double it, double i2) {
    std::printf("%-10s %12.0fms %12.0fms %12.0fms   (iterMR -%1.0f%%, i2MR -%1.0f%%)\n",
                name, p, it, i2, 100 * (1 - it / p), 100 * (1 - i2 / p));
  };
  row("map", plain.map, itermr.map, i2mr.map);
  row("shuffle", plain.shuffle, itermr.shuffle, i2mr.shuffle);
  row("sort", plain.sort, itermr.sort, i2mr.sort);
  row("reduce", plain.reduce, itermr.reduce, i2mr.reduce);
  std::printf(
      "\npaper shape: iterMR map -51%%, shuffle -74%%, reduce -88%%; i2MR map\n"
      "-98%%, shuffle -95%%, sort ~-100%%; i2MR reduce *above* iterMR (MRBG\n"
      "access cost).\n");
  return 0;
}
