// Shared helpers for the experiment harnesses. Every bench binary runs with
// no arguments at laptop scale; set I2MR_SCALE=<float> to grow workloads.
#ifndef I2MR_BENCH_BENCH_UTIL_H_
#define I2MR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/logging.h"
#include "mr/cost_model.h"

namespace i2mr {
namespace bench {

/// Workload scale multiplier (env I2MR_SCALE, default 1).
inline double Scale() {
  const char* s = std::getenv("I2MR_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline int ScaledInt(int base) { return static_cast<int>(base * Scale()); }

/// Cluster cost model shaped like the paper's EC2 testbed, scaled down:
/// Hadoop job startup (~20 s there) becomes 80 ms; shuffle and Dfs reads
/// pay a simulated network of 250 MB/s with 0.2 ms per-transfer latency.
inline CostModel PaperCosts() {
  CostModel cost;
  cost.job_startup_ms = 80;
  cost.task_startup_ms = 1;
  cost.net_mb_per_s = 250;
  cost.net_latency_ms = 0.2;
  return cost;
}

inline void Title(const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==========================================================\n");
}

inline void Note(const std::string& note) { std::printf("%s\n", note.c_str()); }

inline std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  state.reserve(structure.size());
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

/// Number of workers used by all benches.
inline int Workers() { return 4; }

inline std::string BenchRoot(const std::string& name) {
  return "/tmp/i2mr_bench/" + name;
}

}  // namespace bench
}  // namespace i2mr

#endif  // I2MR_BENCH_BENCH_UTIL_H_
