// MRBG-Store microbenchmarks (google-benchmark): chunk codec, appends,
// point queries under each read mode, delta merge, compaction.
#include <benchmark/benchmark.h>

#include "common/codec.h"
#include "common/logging.h"
#include "io/env.h"
#include "mrbg/chunk.h"
#include "mrbg/mrbg_store.h"

namespace i2mr {
namespace {

Chunk MakeChunk(const std::string& key, int entries, int value_bytes) {
  Chunk c;
  c.key = key;
  std::string v(value_bytes, 'v');
  for (int i = 0; i < entries; ++i) {
    c.entries.push_back(ChunkEntry{static_cast<uint64_t>(i * 7 + 1), v});
  }
  return c;
}

void BM_ChunkEncode(benchmark::State& state) {
  Chunk c = MakeChunk("key-000123", static_cast<int>(state.range(0)), 16);
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    benchmark::DoNotOptimize(EncodeChunk(c, &buf));
  }
  state.SetBytesProcessed(state.iterations() * buf.size());
}
BENCHMARK(BM_ChunkEncode)->Arg(4)->Arg(32)->Arg(256);

void BM_ChunkDecode(benchmark::State& state) {
  Chunk c = MakeChunk("key-000123", static_cast<int>(state.range(0)), 16);
  std::string buf;
  EncodeChunk(c, &buf);
  Chunk out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeChunk(buf, &out));
  }
  state.SetBytesProcessed(state.iterations() * buf.size());
}
BENCHMARK(BM_ChunkDecode)->Arg(4)->Arg(32)->Arg(256);

void BM_ApplyDelta(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Chunk base = MakeChunk("k", n, 16);
  std::vector<DeltaEdge> deltas;
  for (int i = 0; i < n / 4 + 1; ++i) {
    deltas.push_back(DeltaEdge{"k", static_cast<uint64_t>(i * 7 + 1), "upd", false});
  }
  for (auto _ : state) {
    Chunk c = base;
    ApplyDeltaToChunk(deltas, &c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ApplyDelta)->Arg(8)->Arg(64)->Arg(512);

/// range(0) = ReadMode, range(1) = layout (0 raw / 1 log-structured), so
/// every store benchmark reports the paper-parity raw layout and the
/// engine-default segmented layout side by side.
class StoreFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    dir_ = "/tmp/i2mr_bench/micro_mrbg";
    RemoveAll(dir_).ok();
    MRBGStoreOptions options;
    options.read_mode = static_cast<ReadMode>(state.range(0));
    options.log_structured = state.range(1) != 0;
    auto s = MRBGStore::Open(dir_, options);
    store_ = std::move(s.value());
    // Two batches of 2000 chunks.
    for (int b = 0; b < 2; ++b) {
      for (int k = 0; k < 2000; ++k) {
        I2MR_CHECK_OK(store_->AppendChunk(MakeChunk(PaddedNum(k), 8, 24)));
      }
      I2MR_CHECK_OK(store_->FinishBatch());
    }
    keys_.clear();
    for (int k = 0; k < 2000; k += 2) keys_.push_back(PaddedNum(k));
  }

  void TearDown(const benchmark::State&) override {
    I2MR_CHECK_OK(store_->Close());
    store_.reset();
    (void)RemoveAll(dir_);
  }

  static std::string Label(const benchmark::State& state) {
    return std::string(ReadModeName(static_cast<ReadMode>(state.range(0)))) +
           (state.range(1) != 0 ? "/log-structured" : "/raw");
  }

 protected:
  std::string dir_;
  std::unique_ptr<MRBGStore> store_;
  std::vector<std::string> keys_;
};

BENCHMARK_DEFINE_F(StoreFixture, QuerySweep)(benchmark::State& state) {
  for (auto _ : state) {
    I2MR_CHECK_OK(store_->PrepareQueries(keys_));
    for (const auto& k : keys_) {
      auto c = store_->Query(k);
      benchmark::DoNotOptimize(c);
    }
  }
  state.SetItemsProcessed(state.iterations() * keys_.size());
  state.SetLabel(Label(state));
}
BENCHMARK_REGISTER_F(StoreFixture, QuerySweep)
    ->Args({static_cast<int>(ReadMode::kIndexOnly), 0})
    ->Args({static_cast<int>(ReadMode::kSingleFixedWindow), 0})
    ->Args({static_cast<int>(ReadMode::kMultiFixedWindow), 0})
    ->Args({static_cast<int>(ReadMode::kMultiDynamicWindow), 0})
    ->Args({static_cast<int>(ReadMode::kIndexOnly), 1})
    ->Args({static_cast<int>(ReadMode::kSingleFixedWindow), 1})
    ->Args({static_cast<int>(ReadMode::kMultiFixedWindow), 1})
    ->Args({static_cast<int>(ReadMode::kMultiDynamicWindow), 1});

BENCHMARK_DEFINE_F(StoreFixture, MergeGroups)(benchmark::State& state) {
  for (auto _ : state) {
    I2MR_CHECK_OK(store_->PrepareQueries(keys_));
    Chunk merged;
    for (const auto& k : keys_) {
      std::vector<DeltaEdge> deltas = {{k, 1, "new-value", false},
                                       {k, 8, "", true}};
      I2MR_CHECK_OK(store_->MergeGroup(k, deltas, &merged));
    }
    I2MR_CHECK_OK(store_->FinishBatch());
  }
  state.SetItemsProcessed(state.iterations() * keys_.size());
  state.SetLabel(Label(state));
}
BENCHMARK_REGISTER_F(StoreFixture, MergeGroups)
    ->Args({static_cast<int>(ReadMode::kIndexOnly), 0})
    ->Args({static_cast<int>(ReadMode::kMultiDynamicWindow), 0})
    ->Args({static_cast<int>(ReadMode::kIndexOnly), 1})
    ->Args({static_cast<int>(ReadMode::kMultiDynamicWindow), 1});

BENCHMARK_DEFINE_F(StoreFixture, Compact)(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    // Add garbage: overwrite every chunk once more.
    for (int k = 0; k < 2000; ++k) {
      I2MR_CHECK_OK(store_->AppendChunk(MakeChunk(PaddedNum(k), 8, 24)));
    }
    I2MR_CHECK_OK(store_->FinishBatch());
    state.ResumeTiming();
    I2MR_CHECK_OK(store_->Compact());
  }
  state.SetLabel(Label(state));
}
BENCHMARK_REGISTER_F(StoreFixture, Compact)
    ->Args({static_cast<int>(ReadMode::kMultiDynamicWindow), 0})
    ->Args({static_cast<int>(ReadMode::kMultiDynamicWindow), 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace i2mr
