// Pipeline epoch latency vs. delta rate.
//
// A PageRank pipeline is bootstrapped once, then fed epochs of increasing
// delta rate (fraction of the graph updated per epoch). For each rate we
// measure end-to-end epoch latency (drain + incremental refresh + atomic
// commit) and its refresh/commit split, against a full-recompute baseline.
//
// Emits BENCH_pipeline.json (epoch latency at 3 delta rates) alongside the
// human-readable report, to track the serving-path perf trajectory.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/pagerank.h"
#include "bench_util.h"
#include "common/timer.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"
#include "pipeline/pipeline.h"

using namespace i2mr;

namespace {

struct RateResult {
  double delta_rate = 0;
  uint64_t deltas_per_epoch = 0;
  int epochs = 0;
  double mean_epoch_ms = 0;
  double mean_refresh_ms = 0;
  double mean_commit_ms = 0;
  double mean_iterations = 0;
};

}  // namespace

int main() {
  bench::Title("Pipeline epochs: latency vs delta rate (PageRank)");
  const int n = bench::ScaledInt(4000);
  const int kEpochsPerRate = 4;
  const double kRates[] = {0.005, 0.02, 0.08};

  LocalCluster cluster(bench::BenchRoot("pipeline_epochs"), bench::Workers(),
                       bench::PaperCosts());

  GraphGenOptions gen;
  gen.num_vertices = n;
  gen.avg_degree = 8;
  auto graph = GenGraph(gen);

  PipelineOptions options;
  options.spec = pagerank::MakeIterSpec("pr", bench::Workers(), 60, 1e-6);
  options.engine.filter_threshold = 0.1;
  auto pipeline = Pipeline::Open(&cluster, "pr", options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "open: %s\n", pipeline.status().ToString().c_str());
    return 1;
  }

  WallTimer bootstrap;
  if (!(*pipeline)->Bootstrap(graph, bench::UnitState(graph)).ok()) return 1;
  double bootstrap_ms = bootstrap.ElapsedMillis();
  std::printf("graph: %zu pages | bootstrap (full computation + commit): "
              "%.0f ms\n\n", graph.size(), bootstrap_ms);
  std::printf("%-12s %-16s %-14s %-14s %-14s %s\n", "delta rate",
              "deltas/epoch", "epoch ms", "refresh ms", "commit ms", "iters");

  std::vector<RateResult> results;
  uint64_t delta_seed = 1000;
  for (double rate : kRates) {
    RateResult r;
    r.delta_rate = rate;
    double epoch_ms = 0, refresh_ms = 0, commit_ms = 0, iters = 0;
    for (int e = 0; e < kEpochsPerRate; ++e) {
      GraphDeltaOptions dopt;
      dopt.update_fraction = rate;
      dopt.seed = delta_seed++;
      auto delta = GenGraphDelta(gen, dopt, &graph);
      if (!(*pipeline)
               ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
               .ok()) {
        return 1;
      }
      auto stats = (*pipeline)->RunEpoch();
      if (!stats.ok()) {
        std::fprintf(stderr, "epoch: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      r.deltas_per_epoch = stats->deltas_applied;
      epoch_ms += stats->wall_ms;
      refresh_ms += stats->refresh_ms;
      commit_ms += stats->commit_ms;
      iters += static_cast<double>(stats->iterations);
      ++r.epochs;
    }
    r.mean_epoch_ms = epoch_ms / r.epochs;
    r.mean_refresh_ms = refresh_ms / r.epochs;
    r.mean_commit_ms = commit_ms / r.epochs;
    r.mean_iterations = iters / r.epochs;
    results.push_back(r);
    std::printf("%-12.3f %-16llu %-14.1f %-14.1f %-14.1f %.1f\n", rate,
                (unsigned long long)r.deltas_per_epoch, r.mean_epoch_ms,
                r.mean_refresh_ms, r.mean_commit_ms, r.mean_iterations);
  }

  // Full-recompute baseline on the final snapshot, for context.
  WallTimer full_timer;
  IterativeEngine full(&cluster,
                       pagerank::MakeIterSpec("pr_full", bench::Workers(), 60, 1e-6));
  if (!full.Prepare(graph, bench::UnitState(graph)).ok() || !full.Run().ok()) {
    return 1;
  }
  double full_ms = full_timer.ElapsedMillis();
  std::printf("\nfull re-computation baseline: %.0f ms\n", full_ms);

  // Machine-readable trajectory point.
  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"pipeline_epochs\",\n");
  std::fprintf(json, "  \"workload\": \"pagerank\",\n");
  std::fprintf(json, "  \"num_vertices\": %d,\n", n);
  std::fprintf(json, "  \"workers\": %d,\n", bench::Workers());
  std::fprintf(json, "  \"bootstrap_ms\": %.1f,\n", bootstrap_ms);
  std::fprintf(json, "  \"full_recompute_ms\": %.1f,\n", full_ms);
  std::fprintf(json, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RateResult& r = results[i];
    std::fprintf(json,
                 "    {\"delta_rate\": %.3f, \"deltas_per_epoch\": %llu, "
                 "\"epochs\": %d, \"mean_epoch_ms\": %.1f, "
                 "\"mean_refresh_ms\": %.1f, \"mean_commit_ms\": %.1f, "
                 "\"mean_iterations\": %.1f}%s\n",
                 r.delta_rate, (unsigned long long)r.deltas_per_epoch,
                 r.epochs, r.mean_epoch_ms, r.mean_refresh_ms,
                 r.mean_commit_ms, r.mean_iterations,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  bench::Note("\nwrote BENCH_pipeline.json");
  return 0;
}
