// Pipeline epoch latency vs. delta rate, delta-log purge cost, and the
// price of power-failure durability.
//
// A PageRank pipeline is bootstrapped once, then fed epochs of increasing
// delta rate (fraction of the graph updated per epoch). For each rate we
// measure end-to-end epoch latency (drain + incremental refresh + atomic
// commit) and its refresh/commit split, against a full-recompute baseline.
// Three delta-log microbench sections follow: PurgeThrough() cost as the
// live-record count grows (must stay flat — the segmented log retires
// whole segments instead of rewriting the live suffix), append cost with
// fsync off (kProcessCrash) vs on (kPowerFailure), and group-commit
// amortization (per-append latency and fsync count vs concurrent synced
// appenders — must fall as concurrency grows).
//
// Emits BENCH_pipeline.json alongside the human-readable report, to track
// the serving-path perf trajectory (CI smoke-checks epoch latency against
// the checked-in baseline).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/pagerank.h"
#include "bench_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "data/graph_gen.h"
#include "io/env.h"
#include "mr/cluster.h"
#include "pipeline/pipeline.h"

using namespace i2mr;

namespace {

struct RateResult {
  double delta_rate = 0;
  uint64_t deltas_per_epoch = 0;
  int epochs = 0;
  double mean_epoch_ms = 0;
  double mean_refresh_ms = 0;
  double mean_commit_ms = 0;
  double mean_iterations = 0;
  // Refresh breakdown: per-stage wall time summed over an epoch's
  // iterations and tasks (StageMetrics), averaged over epochs.
  double mean_map_ms = 0;
  double mean_shuffle_ms = 0;
  double mean_sort_ms = 0;
  double mean_reduce_ms = 0;
  double mean_merge_ms = 0;
};

struct PurgeResult {
  uint64_t live_records = 0;
  uint64_t consumed_records = 0;
  uint64_t segments_retired = 0;
  double purge_ms = 0;
};

DeltaKV BenchDelta(int i) {
  char key[32];
  std::snprintf(key, sizeof(key), "key-%08d", i);
  return DeltaKV{DeltaOp::kInsert, key, "value-0123456789"};
}

// PurgeThrough() cost with a fixed consumed prefix and a growing live
// suffix. The pre-segmentation log rewrote every live byte here, so cost
// grew linearly in `live`; the segmented log only retires the consumed
// segments, so cost must stay flat.
StatusOr<PurgeResult> MeasurePurge(const std::string& root, uint64_t consumed,
                                   uint64_t live) {
  PurgeResult r;
  r.live_records = live;
  r.consumed_records = consumed;
  std::string dir = root + "/purge_" + std::to_string(live);
  I2MR_RETURN_IF_ERROR(ResetDir(dir));
  DeltaLogOptions options;
  options.segment_bytes = 32 << 10;
  auto log = DeltaLog::Open(dir, options);
  if (!log.ok()) return log.status();
  std::vector<DeltaKV> batch;
  batch.reserve(1000);
  for (uint64_t i = 0; i < consumed + live; i += batch.size()) {
    batch.clear();
    for (uint64_t j = i; j < consumed + live && batch.size() < 1000; ++j) {
      batch.push_back(BenchDelta(static_cast<int>(j)));
    }
    auto seq = (*log)->AppendBatch(batch);
    if (!seq.ok()) return seq.status();
  }
  uint64_t segments_before = (*log)->segment_files();
  WallTimer timer;
  I2MR_RETURN_IF_ERROR((*log)->PurgeThrough(consumed));
  r.purge_ms = timer.ElapsedMillis();
  r.segments_retired = segments_before - (*log)->segment_files();
  return r;
}

struct GroupCommitResult {
  int threads = 0;
  double append_ms = 0;   // mean wall latency per acknowledged append
  uint64_t appends = 0;
  uint64_t syncs = 0;     // leader fsyncs actually issued
};

// Synced appends from `threads` concurrent appenders: with group commit,
// concurrent writers share leader fsyncs, so per-append latency and the
// sync count should FALL as concurrency grows (one device round-trip is
// amortized across the group) instead of serializing one fsync each.
StatusOr<GroupCommitResult> MeasureGroupCommit(const std::string& root,
                                               int threads, int per_thread) {
  GroupCommitResult r;
  r.threads = threads;
  r.appends = static_cast<uint64_t>(threads) * per_thread;
  std::string dir = root + "/group_commit_" + std::to_string(threads);
  I2MR_RETURN_IF_ERROR(ResetDir(dir));
  DeltaLogOptions options;
  options.durability = DurabilityMode::kPowerFailure;
  auto log = DeltaLog::Open(dir, options);
  if (!log.ok()) return log.status();
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  WallTimer timer;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        auto seq = (*log)->Append(BenchDelta(t * per_thread + i));
        if (!seq.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  double total_ms = timer.ElapsedMillis();
  if (failures.load() > 0) return Status::Internal("group commit bench append failed");
  // Wall time per append as the caller experiences it: total wall divided
  // by appends *per thread* (threads append in parallel).
  r.append_ms = total_ms / per_thread;
  r.syncs = (*log)->sync_count();
  return r;
}

// Mean per-append latency (flush-only vs fsync) over `n` single appends.
StatusOr<double> MeasureAppends(const std::string& root, DurabilityMode mode,
                                int n) {
  std::string dir = root + (mode == DurabilityMode::kPowerFailure
                                ? "/append_sync"
                                : "/append_nosync");
  I2MR_RETURN_IF_ERROR(ResetDir(dir));
  DeltaLogOptions options;
  options.durability = mode;
  auto log = DeltaLog::Open(dir, options);
  if (!log.ok()) return log.status();
  WallTimer timer;
  for (int i = 0; i < n; ++i) {
    auto seq = (*log)->Append(BenchDelta(i));
    if (!seq.ok()) return seq.status();
  }
  return timer.ElapsedMillis() / n;
}

}  // namespace

int main() {
  // I2MR_TRACE_JSON=trace.json traces every epoch as Chrome trace events.
  const bool traced = trace::StartFromEnv();
  bench::Title("Pipeline epochs: latency vs delta rate (PageRank)");
  const int n = bench::ScaledInt(4000);
  const int kEpochsPerRate = 4;
  const double kRates[] = {0.005, 0.02, 0.08};

  LocalCluster cluster(bench::BenchRoot("pipeline_epochs"), bench::Workers(),
                       bench::PaperCosts());

  GraphGenOptions gen;
  gen.num_vertices = n;
  gen.avg_degree = 8;
  auto graph = GenGraph(gen);

  PipelineOptions options;
  options.spec = pagerank::MakeIterSpec("pr", bench::Workers(), 60, 1e-6);
  options.engine.filter_threshold = 0.1;
  auto pipeline = Pipeline::Open(&cluster, "pr", options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "open: %s\n", pipeline.status().ToString().c_str());
    return 1;
  }

  WallTimer bootstrap;
  if (!(*pipeline)->Bootstrap(graph, bench::UnitState(graph)).ok()) return 1;
  double bootstrap_ms = bootstrap.ElapsedMillis();
  std::printf("graph: %zu pages | bootstrap (full computation + commit): "
              "%.0f ms\n\n", graph.size(), bootstrap_ms);
  std::printf("%-12s %-16s %-14s %-14s %-14s %s\n", "delta rate",
              "deltas/epoch", "epoch ms", "refresh ms", "commit ms", "iters");

  std::vector<RateResult> results;
  uint64_t delta_seed = 1000;
  for (double rate : kRates) {
    RateResult r;
    r.delta_rate = rate;
    double epoch_ms = 0, refresh_ms = 0, commit_ms = 0, iters = 0;
    double map_ms = 0, shuffle_ms = 0, sort_ms = 0, reduce_ms = 0, merge_ms = 0;
    for (int e = 0; e < kEpochsPerRate; ++e) {
      GraphDeltaOptions dopt;
      dopt.update_fraction = rate;
      dopt.seed = delta_seed++;
      auto delta = GenGraphDelta(gen, dopt, &graph);
      if (!(*pipeline)
               ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
               .ok()) {
        return 1;
      }
      auto stats = (*pipeline)->RunEpoch();
      if (!stats.ok()) {
        std::fprintf(stderr, "epoch: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      r.deltas_per_epoch = stats->deltas_applied;
      epoch_ms += stats->wall_ms;
      refresh_ms += stats->refresh_ms;
      commit_ms += stats->commit_ms;
      iters += static_cast<double>(stats->iterations);
      map_ms += stats->refresh_map_ms;
      shuffle_ms += stats->refresh_shuffle_ms;
      sort_ms += stats->refresh_sort_ms;
      reduce_ms += stats->refresh_reduce_ms;
      merge_ms += stats->refresh_merge_ms;
      ++r.epochs;
    }
    r.mean_epoch_ms = epoch_ms / r.epochs;
    r.mean_refresh_ms = refresh_ms / r.epochs;
    r.mean_commit_ms = commit_ms / r.epochs;
    r.mean_iterations = iters / r.epochs;
    r.mean_map_ms = map_ms / r.epochs;
    r.mean_shuffle_ms = shuffle_ms / r.epochs;
    r.mean_sort_ms = sort_ms / r.epochs;
    r.mean_reduce_ms = reduce_ms / r.epochs;
    r.mean_merge_ms = merge_ms / r.epochs;
    results.push_back(r);
    std::printf("%-12.3f %-16llu %-14.1f %-14.1f %-14.1f %.1f\n", rate,
                (unsigned long long)r.deltas_per_epoch, r.mean_epoch_ms,
                r.mean_refresh_ms, r.mean_commit_ms, r.mean_iterations);
    std::printf("%12s breakdown: map %.1f | shuffle %.1f | sort %.1f | "
                "reduce %.1f (merge %.1f) ms\n", "",
                r.mean_map_ms, r.mean_shuffle_ms, r.mean_sort_ms,
                r.mean_reduce_ms, r.mean_merge_ms);
  }

  // Full-recompute baseline on the final snapshot, for context.
  WallTimer full_timer;
  IterativeEngine full(&cluster,
                       pagerank::MakeIterSpec("pr_full", bench::Workers(), 60, 1e-6));
  if (!full.Prepare(graph, bench::UnitState(graph)).ok() || !full.Run().ok()) {
    return 1;
  }
  double full_ms = full_timer.ElapsedMillis();
  std::printf("\nfull re-computation baseline: %.0f ms\n", full_ms);

  // -- Delta-log purge cost vs live-record count (must stay flat) ----------
  bench::Title("DeltaLog purge: cost vs live records (fixed consumed prefix)");
  const uint64_t kConsumed = static_cast<uint64_t>(bench::ScaledInt(20000));
  const uint64_t kLiveCounts[] = {1000, 4000, 16000};
  std::printf("%-14s %-16s %-18s %s\n", "live records", "consumed",
              "segments retired", "purge ms");
  std::vector<PurgeResult> purges;
  for (uint64_t live : kLiveCounts) {
    auto r = MeasurePurge(bench::BenchRoot("pipeline_epochs"), kConsumed,
                          static_cast<uint64_t>(bench::ScaledInt(
                              static_cast<int>(live))));
    if (!r.ok()) {
      std::fprintf(stderr, "purge: %s\n", r.status().ToString().c_str());
      return 1;
    }
    purges.push_back(*r);
    std::printf("%-14llu %-16llu %-18llu %.2f\n",
                (unsigned long long)r->live_records,
                (unsigned long long)r->consumed_records,
                (unsigned long long)r->segments_retired, r->purge_ms);
  }

  // -- Append cost: fsync off (process-crash) vs on (power-failure) --------
  bench::Title("DeltaLog append: flush-only vs fsync per append");
  const int kAppends = bench::ScaledInt(400);
  auto append_nosync = MeasureAppends(bench::BenchRoot("pipeline_epochs"),
                                      DurabilityMode::kProcessCrash, kAppends);
  auto append_sync = MeasureAppends(bench::BenchRoot("pipeline_epochs"),
                                    DurabilityMode::kPowerFailure, kAppends);
  if (!append_nosync.ok() || !append_sync.ok()) {
    std::fprintf(stderr, "append bench failed\n");
    return 1;
  }
  std::printf("%-24s %.4f ms/append\n", "kProcessCrash (flush)",
              *append_nosync);
  std::printf("%-24s %.4f ms/append (%.1fx)\n", "kPowerFailure (fsync)",
              *append_sync,
              *append_nosync > 0 ? *append_sync / *append_nosync : 0.0);

  // -- Group commit: concurrent synced appenders share one fsync -----------
  bench::Title("DeltaLog group commit: synced appends vs appender count");
  const int kPerThread = bench::ScaledInt(200);
  const int kThreadCounts[] = {1, 4, 8};
  std::printf("%-10s %-16s %-14s %s\n", "threads", "ms/append", "appends",
              "fsyncs");
  std::vector<GroupCommitResult> groups;
  for (int threads : kThreadCounts) {
    auto r = MeasureGroupCommit(bench::BenchRoot("pipeline_epochs"), threads,
                                kPerThread);
    if (!r.ok()) {
      std::fprintf(stderr, "group commit: %s\n", r.status().ToString().c_str());
      return 1;
    }
    groups.push_back(*r);
    std::printf("%-10d %-16.4f %-14llu %llu\n", r->threads, r->append_ms,
                (unsigned long long)r->appends, (unsigned long long)r->syncs);
  }

  // Machine-readable trajectory point.
  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"pipeline_epochs\",\n");
  std::fprintf(json, "  \"workload\": \"pagerank\",\n");
  std::fprintf(json, "  \"shuffle_mode\": \"%s\",\n",
               EffectiveShuffleMode(ShuffleMode::kInMemory) ==
                       ShuffleMode::kDisk
                   ? "disk"
                   : "in-memory");
  std::fprintf(json, "  \"num_vertices\": %d,\n", n);
  std::fprintf(json, "  \"workers\": %d,\n", bench::Workers());
  std::fprintf(json, "  \"bootstrap_ms\": %.1f,\n", bootstrap_ms);
  std::fprintf(json, "  \"full_recompute_ms\": %.1f,\n", full_ms);
  std::fprintf(json, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RateResult& r = results[i];
    std::fprintf(json,
                 "    {\"delta_rate\": %.3f, \"deltas_per_epoch\": %llu, "
                 "\"epochs\": %d, \"mean_epoch_ms\": %.1f, "
                 "\"mean_refresh_ms\": %.1f, \"mean_commit_ms\": %.1f, "
                 "\"mean_iterations\": %.1f, "
                 "\"mean_map_ms\": %.1f, \"mean_shuffle_ms\": %.1f, "
                 "\"mean_sort_ms\": %.1f, \"mean_reduce_ms\": %.1f, "
                 "\"mean_merge_ms\": %.1f}%s\n",
                 r.delta_rate, (unsigned long long)r.deltas_per_epoch,
                 r.epochs, r.mean_epoch_ms, r.mean_refresh_ms,
                 r.mean_commit_ms, r.mean_iterations, r.mean_map_ms,
                 r.mean_shuffle_ms, r.mean_sort_ms, r.mean_reduce_ms,
                 r.mean_merge_ms, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"purge\": [\n");
  for (size_t i = 0; i < purges.size(); ++i) {
    const PurgeResult& p = purges[i];
    std::fprintf(json,
                 "    {\"live_records\": %llu, \"consumed_records\": %llu, "
                 "\"segments_retired\": %llu, \"purge_ms\": %.2f}%s\n",
                 (unsigned long long)p.live_records,
                 (unsigned long long)p.consumed_records,
                 (unsigned long long)p.segments_retired, p.purge_ms,
                 i + 1 < purges.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"durability\": {\"append_ms_process_crash\": %.4f, "
               "\"append_ms_power_failure\": %.4f},\n",
               *append_nosync, *append_sync);
  std::fprintf(json, "  \"group_commit\": [\n");
  for (size_t i = 0; i < groups.size(); ++i) {
    const GroupCommitResult& g = groups[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"append_ms\": %.4f, "
                 "\"appends\": %llu, \"fsyncs\": %llu}%s\n",
                 g.threads, g.append_ms, (unsigned long long)g.appends,
                 (unsigned long long)g.syncs,
                 i + 1 < groups.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  bench::Note("\nwrote BENCH_pipeline.json");
  if (traced) {
    auto st = trace::ExportFromEnv();
    if (!st.ok()) {
      std::fprintf(stderr, "trace export: %s\n", st.ToString().c_str());
      return 1;
    }
    bench::Note("wrote trace (I2MR_TRACE_JSON)");
  }
  return 0;
}
