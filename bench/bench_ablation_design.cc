// Ablations for the design choices DESIGN.md calls out:
//   (a) accumulator Reduce (§3.5) vs full MRBGraph maintenance — how much
//       the special-case fast path saves for WordCount-style jobs;
//   (b) parsed-structure caching across iterations (the loop-alive iterMR
//       optimization) on vs off;
//   (c) MRBG-Store append-buffer size (§3.4 incremental storage) — the
//       sequential-append batching that keeps preservation cheap.
#include "apps/pagerank.h"
#include "apps/wordcount.h"
#include "bench_util.h"
#include "common/codec.h"
#include "common/timer.h"
#include "core/incr_iter_engine.h"
#include "core/incr_job.h"
#include "data/graph_gen.h"
#include "data/text_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

namespace {

void AblationAccumulator() {
  std::printf("\n(a) accumulator Reduce vs MRBGraph mode (WordCount refresh)\n");
  TextGenOptions gen;
  gen.num_docs = ScaledInt(60000);
  gen.vocab_size = 3000;
  gen.words_per_doc = 12;

  for (bool accumulator : {true, false}) {
    auto docs = GenDocs(gen);
    std::string tag = accumulator ? "acc" : "mrbg";
    LocalCluster cluster(BenchRoot("abl_a_" + tag), Workers(), PaperCosts());
    I2MR_CHECK_OK(cluster.dfs()->WriteDataset("docs", docs, Workers()));
    IncrementalOneStepJob job(&cluster,
                              accumulator
                                  ? wordcount::MakeSpec("wc", Workers())
                                  : wordcount::MakeMrbgSpec("wc", Workers()));
    WallTimer initial;
    I2MR_CHECK(job.RunInitial(*cluster.dfs()->Parts("docs")).ok());
    double initial_ms = initial.ElapsedMillis();

    auto delta = GenDocsDelta(gen, 0.05, 3, &docs);
    I2MR_CHECK_OK(cluster.dfs()->WriteDeltaDataset("d", delta, Workers()));
    WallTimer incr;
    I2MR_CHECK(job.RunIncremental(*cluster.dfs()->Parts("d")).ok());
    std::printf("  %-22s initial %7.0fms   refresh %7.0fms\n",
                accumulator ? "accumulator Reduce" : "MRBGraph preserved",
                initial_ms, incr.ElapsedMillis());
  }
  std::printf("  -> the §3.5 fast path skips MRBGraph preservation/merge\n"
              "     entirely when the Reduce is distributive.\n");
}

void AblationStructureCache() {
  std::printf("\n(b) parsed-structure caching across iterations (iterMR)\n");
  GraphGenOptions gen;
  gen.num_vertices = ScaledInt(8000);
  gen.avg_degree = 8;
  gen.id_width = 24;
  gen.payload_bytes = 200;
  auto graph = GenGraph(gen);
  for (bool cache : {true, false}) {
    LocalCluster cluster(BenchRoot(std::string("abl_b_") + (cache ? "on" : "off")),
                         Workers(), PaperCosts());
    auto spec = pagerank::MakeIterSpec("abl_b", Workers(), 10, 0);
    spec.cache_parsed_structure = cache;
    IterativeEngine engine(&cluster, spec);
    I2MR_CHECK_OK(engine.Prepare(graph, UnitState(graph)));
    WallTimer timer;
    auto stats = engine.Run();
    I2MR_CHECK(stats.ok());
    double map_ms = 0;
    for (const auto& it : *stats) map_ms += it.map_ms;
    std::printf("  cache %-4s  total %7.0fms   map stage %7.0fms\n",
                cache ? "ON" : "OFF", timer.ElapsedMillis(), map_ms);
  }
  std::printf("  -> loop-alive jobs parse loop-invariant structure once.\n");
}

void AblationAppendBuffer() {
  std::printf("\n(c) MRBG-Store append-buffer size (PageRank refresh)\n");
  GraphGenOptions gen;
  gen.num_vertices = ScaledInt(8000);
  gen.avg_degree = 8;
  for (size_t buf : {size_t(4) << 10, size_t(64) << 10, size_t(1) << 20}) {
    auto graph = GenGraph(gen);
    LocalCluster cluster(BenchRoot("abl_c_" + std::to_string(buf)), Workers(),
                         PaperCosts());
    IncrIterOptions options;
    options.filter_threshold = 0.1;
    options.store_options.append_buffer_bytes = buf;
    // The ablation sweeps how the append buffer shapes re-read I/O; the
    // engine-default appended-tail cache would absorb exactly those reads.
    options.store_options.tail_cache_bytes = 0;
    IncrementalIterativeEngine engine(
        &cluster, pagerank::MakeIterSpec("abl_c", Workers(), 40, 1e-3),
        options);
    WallTimer initial;
    I2MR_CHECK(engine.RunInitial(graph, UnitState(graph)).ok());
    double preserve_and_init_ms = initial.ElapsedMillis();
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.1;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    WallTimer timer;
    auto refresh = engine.RunIncremental(delta);
    I2MR_CHECK(refresh.ok());
    std::printf("  append buffer %7zuB  initial+preserve %7.0fms  refresh %6.0fms\n",
                buf, preserve_and_init_ms, timer.ElapsedMillis());
  }
  std::printf("  -> buffered sequential appends amortize preservation I/O.\n");
}

}  // namespace

int main() {
  Title("Design-choice ablations (see DESIGN.md)");
  AblationAccumulator();
  AblationStructureCache();
  AblationAppendBuffer();
  return 0;
}
