// Figure 8: normalized runtime of refreshing four iterative algorithms
// (PageRank, SSSP, Kmeans, GIM-V) with 10% of the input changed, across
// five solutions: PlainMR re-comp., HaLoop re-comp., iterMR re-comp.,
// i2MapReduce without CPC, i2MapReduce with CPC.
//
// "1.0" is PlainMR. Expected shape (paper): iterMR ≈ 0.4-0.5 of PlainMR
// for PageRank/SSSP; HaLoop *worse* than PlainMR for single-job algorithms
// (extra join job, §8.6) but better for GIM-V; i2MR w/ CPC far below all
// re-computation (paper: ~8x vs PlainMR for PageRank).
#include <map>
#include <string>
#include <vector>

#include "apps/gimv.h"
#include "apps/kmeans.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "baselines/haloop_driver.h"
#include "baselines/plain_driver.h"
#include "bench_util.h"
#include "common/codec.h"
#include "common/timer.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "data/matrix_gen.h"
#include "data/points_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

namespace {

struct Row {
  std::string app;
  double plain = 0, haloop = 0, itermr = 0, i2mr_nocpc = 0, i2mr_cpc = 0;
};

void PrintRows(const std::vector<Row>& rows) {
  std::printf("\n%-10s %12s %12s %12s %12s %12s\n", "app", "PlainMR",
              "HaLoop", "iterMR", "i2MR w/o CPC", "i2MR w/ CPC");
  for (const auto& r : rows) {
    std::printf("%-10s %12.3f %12.3f %12.3f %12.3f %12.3f   (normalized)\n",
                r.app.c_str(), 1.0, r.haloop / r.plain, r.itermr / r.plain,
                r.i2mr_nocpc / r.plain, r.i2mr_cpc / r.plain);
    std::printf("%-10s %10.0fms %10.0fms %10.0fms %10.0fms %10.0fms\n", "",
                r.plain, r.haloop, r.itermr, r.i2mr_nocpc, r.i2mr_cpc);
  }
}

// Runs both i2MR variants: initial job, then a 10%-changed refresh.
template <typename DeltaFn>
double RunI2mr(const std::string& tag, const IterJobSpec& spec,
               const IncrIterOptions& options, const std::vector<KV>& structure,
               const std::vector<KV>& init_state, const DeltaFn& make_delta) {
  LocalCluster cluster(BenchRoot(tag), Workers(), PaperCosts());
  IncrementalIterativeEngine engine(&cluster, spec, options);
  auto init = engine.RunInitial(structure, init_state);
  I2MR_CHECK(init.ok()) << init.status().ToString();
  auto delta = make_delta();
  WallTimer timer;
  auto refresh = engine.RunIncremental(delta);
  I2MR_CHECK(refresh.ok()) << refresh.status().ToString();
  return timer.ElapsedMillis();
}

Row BenchPageRankLike(bool weighted) {
  const std::string app = weighted ? "SSSP" : "PageRank";
  GraphGenOptions gen;
  gen.num_vertices = ScaledInt(weighted ? 6000 : 8000);
  // SSSP runs on a sparser road-like graph so that 10% changes stay
  // regional (the ClueWeb2 graph is far larger than our laptop-scale one,
  // which keeps its diameter higher than a dense Zipf graph would be here).
  gen.avg_degree = weighted ? 3 : 8;
  gen.dest_skew = weighted ? 0.2 : 0.8;
  gen.weighted = weighted;
  auto base_graph = GenGraph(gen);
  std::string source = PaddedNum(0);

  // Iteration budget: how many iterations the iterative engine needs.
  IterJobSpec spec = weighted ? sssp::MakeIterSpec(app + "_it", source,
                                                   Workers(), 60)
                              : pagerank::MakeIterSpec(app + "_it", Workers(),
                                                       60, 1e-3);
  auto init_state = [&](const std::vector<KV>& g) {
    if (!weighted) return UnitState(g);
    std::vector<KV> st;
    for (const auto& kv : g) st.push_back(KV{kv.key, spec.init_state(kv.key)});
    return st;
  };

  // The updated input D' = D + ∆D (10% changed).
  auto updated = base_graph;
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &updated);

  Row row;
  row.app = app;
  int iterations = 0;

  // §8.1.1 note on Incoop-style task-level incremental processing:
  // "without careful data partition, almost all tasks see changes in the
  // experiments, making task-level incremental processing less effective".
  // Count how many of 32 input splits (blocks) contain >= 1 changed record.
  if (!weighted) {
    const int kSplits = 32;
    std::vector<bool> dirty(kSplits, false);
    std::map<std::string, int> key_to_split;
    for (size_t i = 0; i < updated.size(); ++i) {
      key_to_split[updated[i].key] = static_cast<int>(i % kSplits);
    }
    for (const auto& d : delta) {
      auto it = key_to_split.find(d.key);
      if (it != key_to_split.end()) dirty[it->second] = true;
    }
    int n_dirty = 0;
    for (bool b : dirty) n_dirty += b ? 1 : 0;
    std::printf(
        "[task-level check] %s: %d of %d map tasks contain changed records "
        "(%.0f%%) -> Incoop-style task re-execution approximates full "
        "re-computation (§8.1.1)\n",
        app.c_str(), n_dirty, kSplits, 100.0 * n_dirty / kSplits);
  }

  // --- iterMR: full re-computation on the iterative engine. ---------------
  {
    LocalCluster cluster(BenchRoot(app + "_itermr"), Workers(), PaperCosts());
    IterativeEngine engine(&cluster, spec);
    I2MR_CHECK_OK(engine.Prepare(updated, init_state(updated)));
    WallTimer timer;
    auto stats = engine.Run();
    I2MR_CHECK(stats.ok());
    row.itermr = timer.ElapsedMillis();
    iterations = static_cast<int>(stats->size());
  }

  // --- PlainMR: one job per iteration over mixed records. ------------------
  {
    LocalCluster cluster(BenchRoot(app + "_plain"), Workers(), PaperCosts());
    std::vector<KV> mixed;
    for (const auto& kv : updated) {
      mixed.push_back(KV{kv.key, weighted
                                     ? sssp::MixedValue(kv.value,
                                                        kv.key == source ? 0
                                                                        : sssp::kInf)
                                     : pagerank::MixedValue(kv.value, 1.0)});
    }
    I2MR_CHECK_OK(cluster.dfs()->WriteDataset("in", mixed, Workers()));
    PlainIterSpec pspec;
    pspec.name = app + "_plain";
    pspec.mapper = weighted ? sssp::PlainMapper() : pagerank::PlainMapper();
    pspec.reducer =
        weighted ? sssp::PlainReducer(source) : pagerank::PlainReducer();
    pspec.num_reduce_tasks = Workers();
    pspec.num_iterations = iterations;
    auto result = RunPlainIterations(&cluster, pspec, "in");
    I2MR_CHECK(result.ok()) << result.status.ToString();
    row.plain = result.wall_ms;
  }

  // --- HaLoop: two jobs per iteration with structure caching. --------------
  {
    LocalCluster cluster(BenchRoot(app + "_haloop"), Workers(), PaperCosts());
    std::vector<KV> structure, state;
    for (const auto& kv : updated) {
      structure.push_back(KV{kv.key, "S" + kv.value});
      state.push_back(
          KV{kv.key, "R" + std::string(weighted
                                           ? (kv.key == source ? "0" : "1e30")
                                           : "1")});
    }
    I2MR_CHECK_OK(cluster.dfs()->WriteDataset("struct", structure, Workers()));
    I2MR_CHECK_OK(cluster.dfs()->WriteDataset("state", state, Workers()));
    TwoJobIterSpec hspec;
    hspec.name = app + "_haloop";
    hspec.mapper1 =
        weighted ? sssp::HaLoopIdentityMapper() : pagerank::HaLoopIdentityMapper();
    hspec.reducer1 =
        weighted ? sssp::HaLoopJoinReducer() : pagerank::HaLoopJoinReducer();
    hspec.mapper2 =
        weighted ? sssp::HaLoopIdentityMapper() : pagerank::HaLoopIdentityMapper();
    hspec.reducer2 =
        weighted ? sssp::HaLoopMinReducer(source) : pagerank::HaLoopSumReducer();
    hspec.num_reduce_tasks = Workers();
    hspec.num_iterations = iterations;
    auto result = RunTwoJobIterations(&cluster, hspec, "struct", "state");
    I2MR_CHECK(result.ok()) << result.status.ToString();
    row.haloop = result.wall_ms;
  }

  // --- i2MapReduce: incremental refresh from the preserved state. ----------
  auto make_delta = [&] { return delta; };
  {
    IncrIterOptions options;
    options.filter_threshold = -1;    // w/o CPC
    options.mrbg_auto_off_ratio = 2;  // keep fine-grain processing on
    IterJobSpec s = spec;
    s.convergence_epsilon = weighted ? 0.0 : 1e-3;
    row.i2mr_nocpc = RunI2mr(app + "_i2mr_nocpc", s, options, base_graph,
                             init_state(base_graph), make_delta);
  }
  {
    IncrIterOptions options;
    options.filter_threshold = weighted ? 0.0 : 0.1;  // CPC (paper: FT up to 1)
    row.i2mr_cpc = RunI2mr(app + "_i2mr_cpc", spec, options, base_graph,
                           init_state(base_graph), make_delta);
  }
  return row;
}

Row BenchKmeans() {
  Row row;
  row.app = "Kmeans";
  PointsGenOptions gen;
  gen.num_points = ScaledInt(12000);
  gen.dims = 8;
  gen.num_clusters = 8;
  auto base_points = GenPoints(gen);
  auto updated = base_points;
  auto delta = GenPointsDelta(gen, 0.05, 0.05, 17, &updated);
  auto initial = kmeans::InitialState(base_points, 8);
  IterJobSpec spec = kmeans::MakeIterSpec("km_it", Workers(), 25, 1e-3);

  int iterations = 0;
  // --- iterMR -------------------------------------------------------------
  {
    LocalCluster cluster(BenchRoot("km_itermr"), Workers(), PaperCosts());
    IterativeEngine engine(&cluster, spec);
    I2MR_CHECK_OK(engine.Prepare(updated, kmeans::InitialState(updated, 8)));
    WallTimer timer;
    auto stats = engine.Run();
    I2MR_CHECK(stats.ok());
    row.itermr = timer.ElapsedMillis();
    iterations = static_cast<int>(stats->size());
  }
  // --- PlainMR: per-iteration jobs re-reading points from the Dfs. ---------
  {
    LocalCluster cluster(BenchRoot("km_plain"), Workers(), PaperCosts());
    I2MR_CHECK_OK(cluster.dfs()->WriteDataset("pts", updated, Workers()));
    double wall = 0;
    auto result = kmeans::RunPlainKmeansIterations(
        &cluster, "pts", kmeans::DecodeCentroids(
                             kmeans::InitialState(updated, 8)[0].value),
        iterations, Workers(), &wall);
    I2MR_CHECK(result.ok());
    row.plain = wall;
  }
  // --- HaLoop: caching gives it iterMR-class performance on Kmeans
  // (paper §8.2: "HaLoop and iterMR exhibit similar performance"); we model
  // it as iterMR plus one extra per-iteration job startup for its join job.
  row.haloop = row.itermr + iterations * PaperCosts().job_startup_ms;

  // --- i2MapReduce: P∆ = 100% -> MRBGraph off, re-compute from converged
  // centroids (both variants behave identically for Kmeans).
  {
    IncrIterOptions options;
    options.maintain_mrbg = false;
    LocalCluster cluster(BenchRoot("km_i2mr"), Workers(), PaperCosts());
    IncrementalIterativeEngine engine(&cluster, spec, options);
    I2MR_CHECK(engine.RunInitial(base_points, initial).ok());
    WallTimer timer;
    auto refresh = engine.RunIncremental(delta);
    I2MR_CHECK(refresh.ok());
    row.i2mr_cpc = timer.ElapsedMillis();
    row.i2mr_nocpc = row.i2mr_cpc;
  }
  return row;
}

Row BenchGimv() {
  Row row;
  row.app = "GIM-V";
  MatrixGenOptions gen;
  gen.num_blocks = ScaledInt(8);
  gen.block_size = 24;
  gen.density = 0.08;
  auto base_blocks = GenBlockMatrix(gen);
  auto vec = GenVectorBlocks(gen, 1.0);
  auto updated = base_blocks;
  auto delta = GenMatrixDelta(gen, 0.1, 23, &updated);
  IterJobSpec spec =
      gimv::MakeIterSpec("gimv_it", Workers(), gen.block_size, 0.15, 40, 1e-3);

  int iterations = 0;
  // --- iterMR: single phase per iteration thanks to Project. ---------------
  {
    LocalCluster cluster(BenchRoot("gimv_itermr"), Workers(), PaperCosts());
    IterativeEngine engine(&cluster, spec);
    I2MR_CHECK_OK(engine.Prepare(updated, vec));
    WallTimer timer;
    auto stats = engine.Run();
    I2MR_CHECK(stats.ok());
    row.itermr = timer.ElapsedMillis();
    iterations = static_cast<int>(stats->size());
  }
  // --- PlainMR / HaLoop: Algorithm 4's two jobs per iteration. --------------
  auto run_two_job = [&](bool cache, const std::string& tag) {
    LocalCluster cluster(BenchRoot(tag), Workers(), PaperCosts());
    std::vector<KV> matrix_ds, vector_ds;
    for (const auto& kv : updated) matrix_ds.push_back(KV{kv.key, "M" + kv.value});
    for (const auto& kv : vec) vector_ds.push_back(KV{kv.key, "V" + kv.value});
    I2MR_CHECK_OK(cluster.dfs()->WriteDataset("m", matrix_ds, Workers()));
    I2MR_CHECK_OK(cluster.dfs()->WriteDataset("v", vector_ds, Workers()));
    TwoJobIterSpec tspec;
    tspec.name = tag;
    tspec.mapper1 = gimv::Phase1Mapper(gen.num_blocks);
    tspec.reducer1 = gimv::Phase1Reducer(gen.block_size);
    tspec.mapper2 = gimv::Phase2Mapper();
    tspec.reducer2 = gimv::Phase2Reducer(0.15);
    tspec.num_reduce_tasks = Workers();
    tspec.num_iterations = iterations;
    tspec.cache_static = cache;
    auto result = RunTwoJobIterations(&cluster, tspec, "m", "v");
    I2MR_CHECK(result.ok()) << result.status.ToString();
    return result.wall_ms;
  };
  row.plain = run_two_job(false, "gimv_plain");
  row.haloop = run_two_job(true, "gimv_haloop");

  // --- i2MapReduce. ---------------------------------------------------------
  auto make_delta = [&] { return delta; };
  {
    IncrIterOptions options;
    options.filter_threshold = -1;
    options.mrbg_auto_off_ratio = 2;
    row.i2mr_nocpc =
        RunI2mr("gimv_i2mr_nocpc", spec, options, base_blocks, vec, make_delta);
  }
  {
    IncrIterOptions options;
    options.filter_threshold = 1e-3;
    row.i2mr_cpc =
        RunI2mr("gimv_i2mr_cpc", spec, options, base_blocks, vec, make_delta);
  }
  return row;
}

}  // namespace

int main() {
  Title("Figure 8: normalized refresh runtime, 10% input changed");
  Note("Workloads: PageRank/SSSP on power-law graphs, Kmeans on Gaussian");
  Note("points, GIM-V on a random block matrix (paper datasets substituted");
  Note("by seeded synthetic generators; see DESIGN.md).");
  std::vector<Row> rows;
  rows.push_back(BenchPageRankLike(false));  // PageRank
  rows.push_back(BenchPageRankLike(true));   // SSSP
  rows.push_back(BenchKmeans());
  rows.push_back(BenchGimv());
  PrintRows(rows);
  std::printf(
      "\npaper shape: iterMR < PlainMR; HaLoop > PlainMR for single-job\n"
      "algorithms (extra join job) but < PlainMR for GIM-V; i2MR w/ CPC\n"
      "fastest (paper: ~8x vs PlainMR for PageRank, 10.3x for GIM-V).\n");
  return 0;
}
