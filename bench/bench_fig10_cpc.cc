// Figure 10: effect of the change propagation control filter threshold on
// incremental PageRank (10% data changed): runtime falls and mean error
// rises as the threshold grows from 0.1 to 1 (paper: all mean errors below
// 0.2%, runtime drops with FT).
#include "apps/pagerank.h"
#include "bench_util.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

int main() {
  Title("Figure 10: change propagation control threshold sweep (PageRank)");

  GraphGenOptions gen;
  gen.num_vertices = ScaledInt(10000);
  gen.avg_degree = 8;

  std::printf("\n%-10s %12s %12s %16s %16s\n", "FT", "refresh", "iterations",
              "propagated", "mean error");
  for (double ft : {0.1, 0.5, 1.0}) {
    auto graph = GenGraph(gen);
    LocalCluster cluster(BenchRoot("fig10_ft" + std::to_string(ft)), Workers(),
                         PaperCosts());
    IncrIterOptions options;
    options.filter_threshold = ft;
    IncrementalIterativeEngine engine(
        &cluster, pagerank::MakeIterSpec("fig10", Workers(), 40, 1e-3),
        options);
    I2MR_CHECK(engine.RunInitial(graph, UnitState(graph)).ok());

    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.1;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    auto refresh = engine.RunIncremental(delta);
    I2MR_CHECK(refresh.ok()) << refresh.status().ToString();

    int64_t propagated = 0;
    for (const auto& it : refresh->iterations) {
      propagated += it.propagated_pairs;
    }
    // Exact values computed off-line (as in the paper).
    auto reference = pagerank::Reference(graph, 100, 1e-9);
    auto state = engine.StateSnapshot();
    I2MR_CHECK(state.ok());
    double err = pagerank::MeanError(*state, reference);
    std::printf("%-10.1f %10.0fms %12zu %16lld %15.4f%%\n", ft,
                refresh->wall_ms, refresh->iterations.size(),
                static_cast<long long>(propagated), err * 100);
  }
  std::printf(
      "\npaper shape: larger threshold -> fewer propagated kv-pairs, lower\n"
      "runtime, slightly higher mean error ('influential' kv-pairs always\n"
      "propagate, so the error stays bounded).\n");
  return 0;
}
