// Elastic resharding under load: how much does an online N -> M move cost
// the readers, and how much transfer does content addressing save?
//
// One coordinated PageRank fleet bootstraps at N shards, readers serve
// pinned point reads throughout, and deltas stream in rounds. We measure:
//
//   * steady-state read p99 and the mean coordinated epoch commit time
//     (the yardsticks the move is judged against),
//   * the same read p99 while a ReshardCoordinator moves the fleet
//     N -> M live, plus the cutover pause (the appends-blocked window of
//     the final flip),
//   * chunk reuse on a warm retry: the first attempt is killed after the
//     transfer (chunks durable), a 2% delta round lands, and the retry
//     re-cuts the donors — identical buckets dedupe against the
//     content-addressed store, so only the churned fraction re-copies.
//
// Self-asserting (exit 1): the cutover pause must stay under 2x the mean
// epoch commit, and warm reuse must exceed 0.5 — the two headline claims
// of the resharding design. Read p99 during the move is gated in CI
// against the checked-in baseline instead (3x, absolute), the same way
// the serving bench gates pinned reads.
//
// Emits BENCH_resharding.json (tracked trajectory point; see
// tools/check_bench_regression.py --key shape).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "bench_util.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "data/graph_gen.h"
#include "io/env.h"
#include "serving/reshard.h"
#include "serving/shard_group.h"
#include "serving/shard_router.h"

using namespace i2mr;

namespace {

constexpr double kDeltaRate = 0.02;

struct ShapeResult {
  int from = 0;
  int to = 0;
  std::string shape;
  double epoch_commit_ms = 0;      // mean steady-state coordinated commit
  double p99_read_ms_steady = 0;   // pinned reads, no move in flight
  double p99_read_ms_move = 0;     // pinned reads while the move runs
  double cutover_ms = 0;           // appends-blocked window of the flip
  double cutover_vs_epoch = 0;     // cutover_ms / epoch_commit_ms
  double move_wall_ms = 0;
  uint64_t chunks_total = 0;       // cold attempt
  uint64_t bytes_moved = 0;        // cold attempt
  uint64_t dual_journal_deltas = 0;
  uint64_t warm_chunks_total = 0;  // retry after crash + 2% churn
  uint64_t warm_chunks_reused = 0;
  double warm_reuse_ratio = 0;
};

struct ReadPhase {
  Histogram hist;
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
};

/// Readers pin + point-read rotating probes until phase->stop. Every read
/// must succeed: across a correct cutover there is no window where a
/// pinned read can fail.
std::vector<std::thread> StartReaders(ShardGroup* group,
                                      const std::vector<KV>& graph,
                                      int readers, ReadPhase* phase) {
  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([group, &graph, r, phase] {
      for (int i = 0; !phase->stop.load(); ++i) {
        const std::string& probe = graph[(r * 7919 + i) % graph.size()].key;
        const int64_t start = NowNanos();
        auto snap = group->PinSnapshot();
        if (!snap.ok() || !snap->Get(probe).ok()) {
          phase->failed.store(true);
          return;
        }
        phase->hist.Record(NowNanos() - start);
      }
    });
  }
  return threads;
}

StatusOr<ShapeResult> MeasureShape(int from, int to, int num_vertices) {
  ShapeResult result;
  result.from = from;
  result.to = to;
  result.shape = std::to_string(from) + "to" + std::to_string(to);

  GraphGenOptions gen;
  gen.num_vertices = num_vertices;
  gen.avg_degree = 6;
  auto graph = GenGraph(gen);

  MetricsRegistry metrics;
  ShardRouterOptions options;
  options.num_shards = from;
  options.workers_per_shard = 2;
  options.cost = bench::PaperCosts();
  options.cross_shard_exchange = true;
  options.metrics = &metrics;
  options.pipeline.spec = pagerank::MakeIterSpec("rank", 2, 60, 1e-6);
  options.pipeline.engine.filter_threshold = 0.1;
  options.pipeline.min_batch = 1;
  std::string root = bench::BenchRoot("resharding") + "/" + result.shape;
  I2MR_RETURN_IF_ERROR(ResetDir(root));
  auto router = ShardRouter::Open(root, "rank", options);
  if (!router.ok()) return router.status();
  I2MR_RETURN_IF_ERROR((*router)->Bootstrap(graph, bench::UnitState(graph)));
  ShardGroup group(router->get());

  // -- Steady state: mean coordinated commit + read p99, no move --------
  const int kSteadyRounds = 4;
  WallTimer commit_timer;
  {
    ReadPhase steady;
    auto readers = StartReaders(&group, graph, 2, &steady);
    double commit_ms = 0;
    for (int round = 0; round < kSteadyRounds; ++round) {
      GraphDeltaOptions dopt;
      dopt.update_fraction = kDeltaRate;
      dopt.seed = 500 + round;
      auto delta = GenGraphDelta(gen, dopt, &graph);
      I2MR_RETURN_IF_ERROR((*router)->AppendBatch(
          std::vector<DeltaKV>(delta.begin(), delta.end())));
      WallTimer epoch;
      auto stats = (*router)->RefreshCoordinated();
      if (!stats.ok()) return stats.status();
      commit_ms += epoch.ElapsedMillis();
    }
    steady.stop.store(true);
    for (auto& t : readers) t.join();
    if (steady.failed.load()) {
      return Status::Internal("steady-state read failed");
    }
    result.epoch_commit_ms = commit_ms / kSteadyRounds;
    result.p99_read_ms_steady =
        static_cast<double>(steady.hist.p99()) / 1e6;
  }

  // -- The move: readers + streaming deltas while N -> M runs -----------
  {
    ReadPhase moving;
    auto readers = StartReaders(&group, graph, 2, &moving);
    std::atomic<bool> writer_stop{false};
    std::atomic<bool> writer_failed{false};
    // Same ingest cadence as steady state: one kDeltaRate round per epoch
    // interval. (A writer flooding orders of magnitude past the epoch
    // cadence starves ANY online drain — that is an admission problem,
    // not a resharding one.)
    const auto writer_period = std::chrono::milliseconds(
        std::max<int64_t>(20, static_cast<int64_t>(result.epoch_commit_ms)));
    std::thread writer([&] {
      for (int round = 0; !writer_stop.load(); ++round) {
        GraphDeltaOptions dopt;
        dopt.update_fraction = kDeltaRate;
        dopt.seed = 600 + round;
        auto delta = GenGraphDelta(gen, dopt, &graph);
        if (!(*router)
                 ->AppendBatch(
                     std::vector<DeltaKV>(delta.begin(), delta.end()))
                 .ok()) {
          writer_failed.store(true);
          return;
        }
        std::this_thread::sleep_for(writer_period);
      }
    });

    ReshardOptions opts;
    opts.new_num_shards = to;
    ReshardCoordinator coordinator(router->get(), opts);
    auto stats = coordinator.Run();
    writer_stop.store(true);
    writer.join();
    moving.stop.store(true);
    for (auto& t : readers) t.join();
    if (!stats.ok()) return stats.status();
    if (moving.failed.load()) {
      return Status::Internal("read failed during the move");
    }
    if (writer_failed.load()) {
      return Status::Internal("append failed during the move");
    }
    result.p99_read_ms_move = static_cast<double>(moving.hist.p99()) / 1e6;
    result.cutover_ms = stats->cutover_ms;
    result.cutover_vs_epoch =
        result.epoch_commit_ms > 0
            ? result.cutover_ms / result.epoch_commit_ms
            : 0;
    result.move_wall_ms = stats->wall_ms;
    result.chunks_total = stats->chunks_total;
    result.bytes_moved = stats->bytes_moved;
    result.dual_journal_deltas = stats->dual_journal_deltas;
  }
  return result;
}

/// Warm retry on its own fleet: kill the first attempt right after the
/// transfer (every chunk durable in the content store), land one delta
/// round at kDeltaRate, retry. Reuse = the unchurned fraction of buckets.
/// The workload is SSSP, whose state updates localize to the perturbed
/// paths — the case content addressing is built for. (PageRank is the
/// anti-case: one structure delta drifts float scores fleet-wide, so
/// nearly every state bucket re-cuts differently no matter how the
/// transfer is chunked.)
StatusOr<ShapeResult> MeasureWarmReuse(int from, int to, int num_vertices) {
  ShapeResult result;
  result.shape = "warm_retry";

  GraphGenOptions gen;
  gen.num_vertices = num_vertices;
  gen.avg_degree = 6;
  gen.weighted = true;
  auto graph = GenGraph(gen);

  MetricsRegistry metrics;
  ShardRouterOptions options;
  options.num_shards = from;
  options.workers_per_shard = 2;
  options.cost = bench::PaperCosts();
  options.cross_shard_exchange = true;
  options.metrics = &metrics;
  options.pipeline.spec =
      sssp::MakeIterSpec("rank", graph.front().key, 2, 200);
  options.pipeline.engine.filter_threshold = 0.0;
  options.pipeline.min_batch = 1;
  std::string root = bench::BenchRoot("resharding") + "/warm";
  I2MR_RETURN_IF_ERROR(ResetDir(root));
  auto router = ShardRouter::Open(root, "rank", options);
  if (!router.ok()) return router.status();
  std::vector<KV> init;
  init.reserve(graph.size());
  for (const auto& kv : graph) {
    init.push_back(KV{kv.key, options.pipeline.spec.init_state(kv.key)});
  }
  I2MR_RETURN_IF_ERROR((*router)->Bootstrap(graph, init));

  ReshardOptions opts;
  opts.new_num_shards = to;
  opts.buckets_per_stream = 256;  // finer reuse granularity under churn
  opts.crash_hook = [](const std::string& stage) {
    return stage == "transfer";
  };
  ReshardCoordinator crashed(router->get(), opts);
  if (crashed.Run().ok()) {
    return Status::Internal("simulated crash did not surface");
  }

  GraphDeltaOptions dopt;
  dopt.update_fraction = kDeltaRate;
  dopt.seed = 700;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  I2MR_RETURN_IF_ERROR((*router)->AppendBatch(
      std::vector<DeltaKV>(delta.begin(), delta.end())));
  I2MR_RETURN_IF_ERROR((*router)->DrainAll());

  opts.crash_hook = nullptr;
  ReshardCoordinator retry(router->get(), opts);
  auto stats = retry.Run();
  if (!stats.ok()) return stats.status();
  result.warm_chunks_total = stats->chunks_total;
  result.warm_chunks_reused = stats->chunks_reused;
  result.warm_reuse_ratio =
      stats->chunks_total > 0
          ? static_cast<double>(stats->chunks_reused) / stats->chunks_total
          : 0;
  result.bytes_moved = stats->bytes_moved;
  return result;
}

}  // namespace

int main() {
  const bool traced = trace::StartFromEnv();
  bench::Title("Elastic resharding: cutover pause, read p99, chunk reuse");
  const int n = bench::ScaledInt(3000);

  struct Shape {
    int from, to;
  };
  const Shape kShapes[] = {{2, 4}, {4, 2}};

  std::printf("%-8s %-12s %-12s %-14s %-12s %-10s %-10s %-10s %s\n", "shape",
              "epoch ms", "cutover ms", "cut/epoch", "p99 steady", "p99 move",
              "chunks", "journal", "bytes moved");
  std::vector<ShapeResult> results;
  bool violated = false;
  for (const Shape& shape : kShapes) {
    auto r = MeasureShape(shape.from, shape.to, n);
    if (!r.ok()) {
      std::fprintf(stderr, "shape %d->%d: %s\n", shape.from, shape.to,
                   r.status().ToString().c_str());
      return 1;
    }
    results.push_back(*r);
    std::printf("%-8s %-12.2f %-12.2f %-14.2f %-12.4f %-10.4f %-10llu "
                "%-10llu %llu\n",
                r->shape.c_str(), r->epoch_commit_ms, r->cutover_ms,
                r->cutover_vs_epoch, r->p99_read_ms_steady,
                r->p99_read_ms_move, (unsigned long long)r->chunks_total,
                (unsigned long long)r->dual_journal_deltas,
                (unsigned long long)r->bytes_moved);
    // Headline claim 1: the appends-blocked flip costs no more than two
    // ordinary epoch commits.
    if (r->cutover_ms > 2.0 * r->epoch_commit_ms) {
      std::fprintf(stderr,
                   "VIOLATION %s: cutover %.2f ms > 2x epoch commit %.2f ms\n",
                   r->shape.c_str(), r->cutover_ms, r->epoch_commit_ms);
      violated = true;
    }
  }

  auto warm = MeasureWarmReuse(2, 4, n);
  if (!warm.ok()) {
    std::fprintf(stderr, "warm retry: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  std::printf("\nwarm retry after crash + %.0f%% churn: %llu/%llu chunks "
              "reused (%.2f), %llu bytes re-copied\n",
              kDeltaRate * 100,
              (unsigned long long)warm->warm_chunks_reused,
              (unsigned long long)warm->warm_chunks_total,
              warm->warm_reuse_ratio,
              (unsigned long long)warm->bytes_moved);
  // Headline claim 2: content addressing saves the bulk of a retried
  // transfer at a 2% churn rate.
  if (warm->warm_reuse_ratio <= 0.5) {
    std::fprintf(stderr, "VIOLATION warm retry: reuse %.2f <= 0.5\n",
                 warm->warm_reuse_ratio);
    violated = true;
  }

  std::FILE* json = std::fopen("BENCH_resharding.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"resharding\",\n");
  std::fprintf(json, "  \"workload\": \"pagerank\",\n");
  std::fprintf(json, "  \"num_vertices\": %d,\n", n);
  std::fprintf(json, "  \"delta_rate\": %.2f,\n", kDeltaRate);
  std::fprintf(json, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ShapeResult& r = results[i];
    std::fprintf(
        json,
        "    {\"shape\": \"%s\", \"from\": %d, \"to\": %d, "
        "\"epoch_commit_ms\": %.3f, \"cutover_ms\": %.3f, "
        "\"cutover_vs_epoch\": %.3f, \"p99_read_ms_steady\": %.4f, "
        "\"p99_read_ms_move\": %.4f, \"move_wall_ms\": %.2f, "
        "\"chunks_total\": %llu, \"bytes_moved\": %llu, "
        "\"dual_journal_deltas\": %llu}%s\n",
        r.shape.c_str(), r.from, r.to, r.epoch_commit_ms, r.cutover_ms,
        r.cutover_vs_epoch, r.p99_read_ms_steady, r.p99_read_ms_move,
        r.move_wall_ms, (unsigned long long)r.chunks_total,
        (unsigned long long)r.bytes_moved,
        (unsigned long long)r.dual_journal_deltas,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"warm_retry\": {\"chunks_total\": %llu, "
               "\"chunks_reused\": %llu, \"reuse_ratio\": %.4f, "
               "\"bytes_moved\": %llu}\n",
               (unsigned long long)warm->warm_chunks_total,
               (unsigned long long)warm->warm_chunks_reused,
               warm->warm_reuse_ratio,
               (unsigned long long)warm->bytes_moved);
  std::fprintf(json, "}\n");
  std::fclose(json);
  bench::Note("\nwrote BENCH_resharding.json");
  if (traced) {
    Status exported = trace::ExportFromEnv();
    if (!exported.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   exported.ToString().c_str());
      return 1;
    }
    bench::Note("wrote trace (I2MR_TRACE_JSON)");
  }
  return violated ? 1 : 0;
}
