// Figure 11: change propagation over the iterations of an incremental
// PageRank refresh with only 1% of the input changed. Without CPC the
// changes reach (almost) all kv-pairs within a few iterations and every
// iteration stays expensive; with CPC the number of propagated (non-
// converged) kv-pairs first rises, then falls steadily, and the
// per-iteration runtime follows.
#include "apps/pagerank.h"
#include "bench_util.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;
using namespace i2mr::bench;

namespace {

struct Series {
  std::string label;
  std::vector<int64_t> propagated;
  std::vector<double> runtime_ms;
};

}  // namespace

int main() {
  Title("Figure 11: per-iteration propagation, 1% input changed (PageRank)");

  GraphGenOptions gen;
  gen.num_vertices = ScaledInt(10000);
  gen.avg_degree = 8;
  const int kMaxIters = 10;

  std::vector<Series> series;
  struct Config {
    std::string label;
    double ft;
  };
  for (const Config& cfg : std::vector<Config>{
           {"w/o CPC", -1.0}, {"FT=0.1", 0.1}, {"FT=0.5", 0.5}, {"FT=1", 1.0}}) {
    auto graph = GenGraph(gen);
    LocalCluster cluster(BenchRoot("fig11_" + cfg.label), Workers(),
                         PaperCosts());
    IncrIterOptions options;
    options.filter_threshold = cfg.ft;
    options.mrbg_auto_off_ratio = 2.0;  // observe raw propagation
    auto spec = pagerank::MakeIterSpec("fig11", Workers(), kMaxIters, 0);
    IncrementalIterativeEngine engine(&cluster, spec, options);
    I2MR_CHECK(engine.RunInitial(graph, UnitState(graph)).ok());

    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.01;  // 1% changed (200k of 20M in the paper)
    auto delta = GenGraphDelta(gen, dopt, &graph);
    auto refresh = engine.RunIncremental(delta);
    I2MR_CHECK(refresh.ok()) << refresh.status().ToString();

    Series s;
    s.label = cfg.label;
    for (const auto& it : refresh->iterations) {
      s.propagated.push_back(it.propagated_pairs);
      s.runtime_ms.push_back(it.wall_ms);
    }
    series.push_back(std::move(s));
  }

  std::printf("\n(a) propagated kv-pairs per iteration\n");
  std::printf("%-10s", "iter");
  for (const auto& s : series) std::printf(" %12s", s.label.c_str());
  std::printf("\n");
  for (int it = 0; it < kMaxIters; ++it) {
    std::printf("%-10d", it + 1);
    for (const auto& s : series) {
      if (it < static_cast<int>(s.propagated.size())) {
        std::printf(" %12lld", static_cast<long long>(s.propagated[it]));
      } else {
        std::printf(" %12s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\n(b) runtime per iteration (ms)\n");
  std::printf("%-10s", "iter");
  for (const auto& s : series) std::printf(" %12s", s.label.c_str());
  std::printf("\n");
  for (int it = 0; it < kMaxIters; ++it) {
    std::printf("%-10d", it + 1);
    for (const auto& s : series) {
      if (it < static_cast<int>(s.runtime_ms.size())) {
        std::printf(" %12.0f", s.runtime_ms[it]);
      } else {
        std::printf(" %12s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: w/o CPC the propagated count reaches ~all kv-pairs by\n"
      "iteration 3 and runtime stays high; with CPC the count rises then\n"
      "falls steadily, and higher thresholds filter more aggressively.\n"
      "(Iteration 1 is the longest: it merges the delta MRBGraph, §8.5.)\n");
  return 0;
}
