// Sharded serving: one PageRank computation hash-partitioned across four
// shards, each a full vertical slice (own cluster, delta log, epoch dirs),
// behind a ShardRouter running in coordinated cross-shard mode: rank
// contributions along edges that cross the partition are captured at each
// shard's engine boundary, routed to the owning shard by the
// CrossShardExchange, and re-reduced under a barrier until the joint
// fixpoint — so the sharded answer equals the whole unsharded computation,
// and every epoch commits on all shards atomically (uniform snapshot
// version vectors). While graph deltas stream in and the coordinator
// commits barrier epochs in the background, readers pin epoch-consistent
// ShardSnapshots and serve point gets, multi-gets and scatter-gather
// top-k from exactly that cut — commits and log purges land underneath
// without ever blocking or invalidating them. An AdmissionController
// gives a paying tenant unlimited reads while a free-tier tenant is
// token-bucket throttled at the edge, and caps the free tenant's epoch
// scheduling so its delta backlog can't crowd out the paid tenant's
// refreshes.
//
// Build: cmake --build build && ./build/examples/sharded_serving
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "apps/pagerank.h"
#include "common/codec.h"
#include "data/graph_gen.h"
#include "common/trace.h"
#include "serving/admission.h"
#include "serving/shard_group.h"
#include "serving/shard_router.h"

using namespace i2mr;

namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

std::string EpochVector(const std::vector<uint64_t>& epochs) {
  std::string out = "[";
  for (size_t i = 0; i < epochs.size(); ++i) {
    out += (i ? " " : "") + std::to_string(epochs[i]);
  }
  return out + "]";
}

double Rank(const KV& kv) {
  auto v = ParseDouble(kv.value);
  return v.ok() ? *v : 0.0;
}

}  // namespace

int main() {
  // I2MR_TRACE_JSON=/tmp/trace.json ./sharded_serving records the whole run
  // as a Chrome trace (load it in Perfetto / chrome://tracing).
  const bool traced = trace::StartFromEnv();

  // -- Tenants: "gold" reads freely, "free" is throttled --------------------
  AdmissionController admission;
  TenantQuota free_tier;
  free_tier.read_rate = 20;   // 20 reads/sec sustained...
  free_tier.read_burst = 10;  // ...bursting to 10
  free_tier.epoch_rate = 2;   // and at most ~2 refresh epochs/sec
  admission.SetQuota("free", free_tier);

  // -- Four shards, each its own pipeline + cluster -------------------------
  GraphGenOptions gen;
  gen.num_vertices = 2400;
  gen.avg_degree = 6;
  auto graph = GenGraph(gen);

  ShardRouterOptions options;
  options.num_shards = 4;
  options.workers_per_shard = 2;
  // Coordinated mode: cross-shard rank contributions are exchanged and
  // epochs commit under a barrier — sharded results match the unsharded
  // computation instead of each shard's isolated subgraph.
  options.cross_shard_exchange = true;
  options.pipeline.spec = pagerank::MakeIterSpec("rank", 2, 60, 1e-4);
  // Exact change propagation: with a coarse CPC threshold the exchange
  // rounds would stop at a correspondingly coarse joint fixpoint. The
  // 1e-4 epsilon bounds the barrier rounds per epoch (~ln(1/eps)).
  options.pipeline.engine.filter_threshold = 0.0;
  options.pipeline.min_batch = 20;
  options.pipeline.max_lag_ms = 100;
  options.manager.poll_interval_ms = 5;
  options.tenant = "free";  // the computation itself runs on the free tier
  options.admission = &admission;
  auto router = ShardRouter::Open("/tmp/i2mr_sharded_serving", "rank", options);
  if (!router.ok()) {
    std::fprintf(stderr, "open: %s\n", router.status().ToString().c_str());
    return 1;
  }
  if (!(*router)->Bootstrap(graph, UnitState(graph)).ok()) return 1;
  std::printf("bootstrapped %zu pages across %d shards, epochs %s\n",
              graph.size(), (*router)->num_shards(),
              EpochVector((*router)->CommittedEpochs()).c_str());

  ShardGroupOptions gopts;
  gopts.admission = &admission;
  ShardGroup group(router->get(), gopts);

  // -- Stream deltas while serving pinned reads -----------------------------
  (*router)->Start();
  const std::string probe = graph.front().key;
  for (int round = 1; round <= 4; ++round) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.04;
    dopt.seed = 700 + round;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    if (!(*router)
             ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
             .ok()) {
      return 1;
    }

    // The gold tenant pins an epoch-consistent snapshot: every answer in
    // this round comes from the same frozen per-shard epoch vector, no
    // matter how many commits land meanwhile.
    auto snap = group.PinSnapshot("gold");
    if (!snap.ok()) return 1;
    auto rank = snap->Get(probe);
    auto top = snap->TopK(3, Rank);
    if (!rank.ok() || top.empty()) return 1;
    std::printf(
        "round %d: +%4zu deltas | gold pinned cut %s rank(%s)=%s top1=%s\n",
        round, delta.size(), EpochVector(snap->epochs()).c_str(),
        probe.c_str(), rank->c_str(), top.front().key.c_str());
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }

  // -- The free tenant hammers reads and hits its bucket --------------------
  int admitted = 0, throttled = 0;
  for (int i = 0; i < 60; ++i) {
    auto r = group.Get("free", probe);
    if (r.ok()) {
      ++admitted;
    } else if (r.status().IsResourceExhausted()) {
      ++throttled;
    } else {
      return 1;
    }
  }
  // Gold is untouched by free's rejections.
  for (int i = 0; i < 60; ++i) {
    if (!group.Get("gold", probe).ok()) return 1;
  }
  std::printf("free tenant: %d/60 reads admitted, %d throttled at the edge; "
              "gold tenant: 60/60 admitted\n", admitted, throttled);

  // Drain what's left (operator drain bypasses the epoch quota) and report.
  for (int i = 0; i < 500 && (*router)->TotalPending() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  (*router)->Stop();
  if ((*router)->DrainAll().ok() && (*router)->TotalPending() == 0) {
    std::printf("drained; final epochs %s\n",
                EpochVector((*router)->CommittedEpochs()).c_str());
  }

  auto stats = admission.tenant_stats("free");
  std::printf("free tenant totals: reads %llu admitted / %llu rejected, "
              "epochs %llu admitted / %llu deferred\n",
              (unsigned long long)stats.reads_admitted,
              (unsigned long long)stats.reads_rejected,
              (unsigned long long)stats.epochs_admitted,
              (unsigned long long)stats.epochs_deferred);
  std::printf("registry slice:\n%s",
              MetricsRegistry::Default()->ToString("serving.rank.shard0").c_str());

  // Ground truth: the union of the shards' served ranks matches an offline
  // recompute of the WHOLE graph — not merely each shard's own subgraph —
  // because the coordinated refresh exchanged every cross-shard
  // contribution. The pinned vectors above being uniform is the same
  // property on the commit side.
  std::vector<KV> served;
  for (int s = 0; s < (*router)->num_shards(); ++s) {
    auto part = (*router)->shard(s)->ServingSnapshot();
    served.insert(served.end(), part.begin(), part.end());
  }
  auto reference = pagerank::Reference(graph, 60, 1e-6);
  std::printf("mean error vs whole-graph offline recompute: %.5f%%\n",
              pagerank::MeanError(served, reference) * 100.0);
  std::printf("exchange: %s\n",
              MetricsRegistry::Default()
                  ->ToString("serving.rank.exchange")
                  .c_str());
  if (traced) {
    auto st = trace::ExportFromEnv();
    if (!st.ok()) {
      std::fprintf(stderr, "trace export: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace to $I2MR_TRACE_JSON\n");
  }
  return 0;
}
