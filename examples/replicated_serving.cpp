// Replicated serving with failover: one PageRank computation across two
// shards, each primary feeding two read replicas by delta-log shipping.
// Every follower is a full vertical slice — its own root with shipped log
// segments and epoch dirs, laid out byte-for-byte like a shard root — so
// a follower serves pinned epoch-consistent reads through the exact same
// snapshot machinery as the primary, and promoting one is just "open a
// pipeline over its root".
//
// The walk-through:
//   1. Bootstrap the sharded computation, open a ReplicaSet (2 followers
//      per shard), and let the shippers catch everyone up.
//   2. Stream deltas while load-balanced reads fan out across primaries
//      and caught-up followers; watch per-replica lag and shipped bytes.
//   3. Kill a follower: routing skips it, reads keep flowing; restart it
//      and the shipper heals it back to zero lag.
//   4. Kill shard 0's PRIMARY: reads continue from its followers at the
//      last durably committed epoch. Promote the freshest follower — A/B
//      verification, CURRENT flip, pipeline recovery over its root — and
//      writes resume, serving exactly the pre-crash committed state.
//
// Build: cmake --build build && ./build/examples/replicated_serving
#include <cstdio>
#include <string>
#include <vector>

#include "apps/pagerank.h"
#include "data/graph_gen.h"
#include "replication/replica_set.h"
#include "serving/shard_router.h"

using namespace i2mr;

namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

void PrintFleet(const ReplicaSet& set) {
  for (int s = 0; s < set.num_shards(); ++s) {
    std::printf("  shard %d: primary %s", s,
                set.primary_dead(s) ? "DEAD" : "alive");
    for (int i = 0; i < set.replicas_per_shard(); ++i) {
      const FollowerReplica* f = set.replica(s, i);
      std::printf(" | replica%d epoch=%llu lag=%llu %s", i,
                  (unsigned long long)f->applied_epoch(),
                  (unsigned long long)set.ReplicaLag(s, i),
                  set.IsReplicaStale(s, i) ? "(stale)" : "(serving)");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  GraphGenOptions gen;
  gen.num_vertices = 1200;
  gen.avg_degree = 6;
  auto graph = GenGraph(gen);

  // -- Primaries: a 2-shard independent-mode router --------------------------
  ShardRouterOptions options;
  options.num_shards = 2;
  options.workers_per_shard = 2;
  options.pipeline.spec = pagerank::MakeIterSpec("rank", 2, 80, 1e-8);
  options.pipeline.engine.filter_threshold = 0.0;
  options.pipeline.log.segment_bytes = 16 << 10;  // rotate: give shipping work
  options.pipeline.log.archive_purged = true;
  options.pipeline.log.compress_archive = true;   // followers read .lzd too
  auto router = ShardRouter::Open("/tmp/i2mr_replicated_serving", "rank",
                                  options);
  if (!router.ok()) {
    std::fprintf(stderr, "open: %s\n", router.status().ToString().c_str());
    return 1;
  }
  if (!(*router)->Bootstrap(graph, UnitState(graph)).ok()) return 1;

  // -- Followers: two read replicas per shard, fed by delta-log shipping -----
  ReplicaSetOptions ro;
  ro.replicas_per_shard = 2;
  ro.max_replica_lag_epochs = 4;
  auto set = ReplicaSet::Open(router->get(),
                              "/tmp/i2mr_replicated_serving_replicas", ro);
  if (!set.ok()) {
    std::fprintf(stderr, "replicas: %s\n", set.status().ToString().c_str());
    return 1;
  }
  if (!(*set)->SyncAll().ok()) return 1;
  std::printf("bootstrapped %zu pages; fleet after initial ship:\n",
              graph.size());
  PrintFleet(**set);

  // -- Stream deltas; reads fan out over primaries + caught-up followers -----
  const std::string probe = graph.front().key;
  for (int round = 1; round <= 3; ++round) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.05;
    dopt.seed = 300 + round;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    if (!(*set)->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
             .ok() ||
        !(*set)->DrainAll().ok() || !(*set)->SyncAll().ok()) {
      return 1;
    }
    auto r = (*set)->Get(probe);
    if (!r.ok()) return 1;
    std::printf("round %d: +%3zu deltas, rank(%s)=%s\n", round, delta.size(),
                probe.c_str(), r->c_str());
  }
  PrintFleet(**set);

  // -- Kill a follower: routing skips it, the shipper heals it on restart ----
  if (!(*set)->KillReplica(0, 0).ok()) return 1;
  for (int i = 0; i < 50; ++i) {
    if (!(*set)->Get(probe).ok()) return 1;  // reads unaffected
  }
  if (!(*set)->RestartReplica(0, 0).ok() || !(*set)->SyncAll().ok()) return 1;
  std::printf("killed + restarted shard0/replica0; healed to lag %llu\n",
              (unsigned long long)(*set)->ReplicaLag(0, 0));

  // -- Kill shard 0's primary and fail over -----------------------------------
  uint64_t pre_crash_epoch = (*router)->shard(0)->committed_epoch();
  auto pre_crash_rank = (*set)->Get(probe);
  if (!pre_crash_rank.ok() || !(*set)->KillPrimary(0).ok()) return 1;
  // Reads still served (by shard 0's followers); writes to the shard refuse.
  if (!(*set)->Get(probe).ok()) return 1;
  bool write_refused = !(*set)->Append(DeltaKV{DeltaOp::kInsert,
                                               probe, "0.5"}).ok();
  auto promoted = (*set)->Promote(0);
  if (!promoted.ok()) {
    std::fprintf(stderr, "promote: %s\n",
                 promoted.status().ToString().c_str());
    return 1;
  }
  std::printf("primary 0 killed (writes refused while dead: %s); "
              "promoted replica%d at epoch %llu (pre-crash %llu)\n",
              write_refused ? "yes" : "NO", *promoted,
              (unsigned long long)(*set)->primary(0)->committed_epoch(),
              (unsigned long long)pre_crash_epoch);

  // The promoted primary serves exactly the pre-crash committed state, and
  // writes flow again — through the new primary, shipped to the survivor.
  auto post = (*set)->Get(probe);
  if (!post.ok() || *post != *pre_crash_rank) return 1;
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.05;
  dopt.seed = 999;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  if (!(*set)->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
           .ok() ||
      !(*set)->DrainAll().ok() || !(*set)->SyncAll().ok()) {
    return 1;
  }
  std::printf("post-failover: rank(%s)=%s matches pre-crash; new deltas "
              "committed and shipped\n", probe.c_str(), post->c_str());
  PrintFleet(**set);
  return 0;
}
