// Kmeans over an evolving point set (all-to-one dependency, §4.1/§5.2).
//
// Kmeans is the paper's example of a computation where fine-grain state
// preservation is NOT worthwhile: any input change updates the single
// centroid-set state kv-pair, so i2MapReduce turns MRBGraph maintenance off
// and re-computes iteratively from the previously converged centroids —
// which still converges much faster than starting from random centroids.
//
// Build: cmake --build build && ./build/examples/kmeans_clustering
#include <cstdio>

#include "apps/kmeans.h"
#include "core/incr_iter_engine.h"
#include "data/points_gen.h"
#include "mr/cluster.h"

using namespace i2mr;

int main() {
  LocalCluster cluster("/tmp/i2mr_kmeans_example", 4);

  PointsGenOptions gen;
  gen.num_points = 20000;
  gen.dims = 8;
  gen.num_clusters = 6;
  auto points = GenPoints(gen);
  auto initial = kmeans::InitialState(points, 6);
  std::printf("clustering %zu points (%d dims, k=6)\n", points.size(),
              gen.dims);

  IncrIterOptions options;
  options.maintain_mrbg = false;  // §5.2: wasteful for Kmeans
  IncrementalIterativeEngine engine(
      &cluster, kmeans::MakeIterSpec("kmeans", 4, 40, 1e-4), options);

  auto init = engine.RunInitial(points, initial);
  if (!init.ok()) {
    std::fprintf(stderr, "initial run failed: %s\n",
                 init.status().ToString().c_str());
    return 1;
  }
  std::printf("initial clustering: %zu iterations, %.0f ms\n",
              init->iterations.size(), init->total_ms());

  // New points arrive and some are re-measured.
  auto delta = GenPointsDelta(gen, /*update_fraction=*/0.05,
                              /*insert_fraction=*/0.10, 7, &points);
  auto refresh = engine.RunIncremental(delta);
  if (!refresh.ok()) {
    std::fprintf(stderr, "refresh failed: %s\n",
                 refresh.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "refresh with %zu delta records: %zu iterations from the previous "
      "centroids, %.0f ms (MRBGraph maintenance off: %s)\n",
      delta.size(), refresh->iterations.size(), refresh->total_ms(),
      refresh->mrbg_turned_off ? "yes" : "no");

  auto state = engine.StateSnapshot();
  if (!state.ok()) return 1;
  auto centroids = kmeans::DecodeCentroids((*state)[0].value);
  std::printf("\nfinal centroids:\n");
  for (size_t c = 0; c < centroids.size(); ++c) {
    std::printf("  c%zu = (", c);
    for (size_t d = 0; d < centroids[c].size() && d < 3; ++d) {
      std::printf("%s%.3f", d > 0 ? ", " : "", centroids[c][d]);
    }
    std::printf("%s)\n", centroids[c].size() > 3 ? ", ..." : "");
  }
  return 0;
}
