// Tracking connected components of an evolving social graph.
//
// Connected Components is one of the GIM-V-family mining operations the
// paper cites (§4.1). Labels only decrease under propagation, so component
// merges caused by new friendships refresh *exactly* from the previous
// converged labels with filter threshold 0 — typically touching only the
// merged region.
//
// Build: cmake --build build && ./build/examples/community_tracking
#include <cstdio>
#include <map>

#include "apps/concomp.h"
#include "common/codec.h"
#include "common/random.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;

namespace {

int CountComponents(const std::vector<KV>& state) {
  std::map<std::string, int> sizes;
  for (const auto& kv : state) sizes[kv.value]++;
  return static_cast<int>(sizes.size());
}

}  // namespace

int main() {
  LocalCluster cluster("/tmp/i2mr_community_example", 4);

  // A sparse social graph: many small communities.
  GraphGenOptions gen;
  gen.num_vertices = 4000;
  gen.avg_degree = 1.6;
  gen.dest_skew = 0.3;
  auto graph = concomp::Symmetrize(GenGraph(gen));
  std::printf("social graph: %zu members\n", graph.size());

  IncrIterOptions options;
  options.filter_threshold = 0.0;   // exact propagation
  options.mrbg_auto_off_ratio = 2;  // merges stay local; keep fine-grain mode
  IncrementalIterativeEngine engine(
      &cluster, concomp::MakeIterSpec("communities", 4), options);

  auto init = engine.RunInitial(graph, concomp::InitialState(graph));
  if (!init.ok()) {
    std::fprintf(stderr, "initial run failed: %s\n",
                 init.status().ToString().c_str());
    return 1;
  }
  auto state = engine.StateSnapshot();
  if (!state.ok()) return 1;
  std::printf("initial communities: %d (%zu iterations, %.0f ms)\n",
              CountComponents(*state), init->iterations.size(),
              init->total_ms());

  // New friendships appear between random members each week.
  Rng rng(2026);
  for (int week = 1; week <= 3; ++week) {
    std::vector<DeltaKV> delta;
    std::map<std::string, std::string> updated;  // sk -> new value (normalized)
    for (int f = 0; f < 12; ++f) {
      const KV& a = graph[rng.Uniform(graph.size())];
      const KV& b = graph[rng.Uniform(graph.size())];
      if (a.key == b.key) continue;
      for (const auto* rec : {&a, &b}) {
        const auto* other = (rec == &a) ? &b : &a;
        std::string base = updated.count(rec->key) ? updated[rec->key]
                                                   : rec->value;
        auto dests = ParseAdjacency(base);
        dests.push_back(other->key);
        std::sort(dests.begin(), dests.end());
        dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
        updated[rec->key] = JoinAdjacency(dests);
      }
    }
    for (auto& kv : graph) {
      auto it = updated.find(kv.key);
      if (it == updated.end() || it->second == kv.value) continue;
      delta.push_back(DeltaKV{DeltaOp::kDelete, kv.key, kv.value});
      delta.push_back(DeltaKV{DeltaOp::kInsert, kv.key, it->second});
      kv.value = it->second;
    }

    auto refresh = engine.RunIncremental(delta);
    if (!refresh.ok()) {
      std::fprintf(stderr, "refresh failed: %s\n",
                   refresh.status().ToString().c_str());
      return 1;
    }
    int64_t mapped = 0;
    for (const auto& it : refresh->iterations) mapped += it.map_instances;
    state = engine.StateSnapshot();
    if (!state.ok()) return 1;
    std::printf(
        "week %d: %2zu new friendships -> %d communities "
        "(%lld map instances re-run of %zu, %.0f ms)\n",
        week, delta.size() / 2, CountComponents(*state),
        static_cast<long long>(mapped), graph.size(), refresh->total_ms());
    // Exactness check against union-find.
    if (concomp::ErrorRate(*state, concomp::Reference(graph)) != 0.0) {
      std::fprintf(stderr, "BUG: labels diverge from union-find\n");
      return 1;
    }
  }
  // Periodic housekeeping: reclaim obsolete MRBGraph chunk versions.
  if (!engine.CompactMRBGraph().ok()) return 1;
  std::printf("MRBGraph compacted; ready for the next week.\n");
  return 0;
}
