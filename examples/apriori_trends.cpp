// APriori frequent word-pair mining over a growing tweet stream (§8.1.3).
//
// One-step computation with accumulator Reduce: the candidate vocabulary is
// computed once with a preprocessing MapReduce job; the counting pass then
// refreshes pair frequencies incrementally as new tweets arrive — new
// counts simply fold into the preserved results (§3.5), no MRBGraph needed.
//
// Build: cmake --build build && ./build/examples/apriori_trends
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/apriori.h"
#include "common/codec.h"
#include "data/text_gen.h"
#include "mr/cluster.h"

using namespace i2mr;

int main() {
  LocalCluster cluster("/tmp/i2mr_apriori_example", 4);

  TextGenOptions gen;
  gen.num_docs = 20000;
  gen.vocab_size = 2000;
  gen.words_per_doc = 10;
  auto tweets = GenDocs(gen);
  if (!cluster.dfs()->WriteDataset("tweets", tweets, 4).ok()) return 1;
  std::printf("corpus: %zu tweets\n", tweets.size());

  // Pass 1: frequent single words (the candidate list).
  auto frequent = apriori::FrequentWords(&cluster, "tweets", /*min_support=*/400);
  if (!frequent.ok()) {
    std::fprintf(stderr, "pass 1 failed: %s\n",
                 frequent.status().ToString().c_str());
    return 1;
  }
  std::printf("pass 1: %zu frequent words (support >= 400)\n",
              frequent->size());

  // Pass 2: count candidate pairs, preserving results for refreshes.
  IncrementalOneStepJob job(&cluster, apriori::MakeSpec("apriori", 4, *frequent));
  auto init = job.RunInitial(*cluster.dfs()->Parts("tweets"));
  if (!init.ok()) return 1;
  std::printf("pass 2 (initial): %.0f ms\n", init->wall_ms);

  // A week of new tweets arrives (~8% of the corpus, insertion-only).
  auto delta = GenDocsDelta(gen, 0.079, 77, &tweets);
  if (!cluster.dfs()->WriteDeltaDataset("new-tweets", delta, 2).ok()) return 1;
  auto incr = job.RunIncremental(*cluster.dfs()->Parts("new-tweets"));
  if (!incr.ok()) return 1;
  std::printf("incremental refresh over %zu new tweets: %.0f ms (%.1fx "
              "faster than the initial pass)\n",
              delta.size(), incr->wall_ms,
              init->wall_ms / std::max(incr->wall_ms, 1.0));

  // Top trending pairs.
  auto results = job.Results();
  if (!results.ok()) return 1;
  std::vector<std::pair<uint64_t, std::string>> top;
  for (const auto& kv : *results) {
    top.emplace_back(*ParseNum(kv.value), kv.key);
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("\ntop word pairs:\n");
  for (size_t i = 0; i < top.size() && i < 10; ++i) {
    std::printf("  %-20s %llu\n", top[i].second.c_str(),
                static_cast<unsigned long long>(top[i].first));
  }
  return 0;
}
