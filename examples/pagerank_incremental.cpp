// Evolving-web-graph PageRank (the paper's flagship workload, §1 + §8).
//
// Runs the initial PageRank computation on a synthetic power-law web graph,
// then refreshes the ranking twice as the graph evolves (10% of pages
// re-crawled each time), comparing the incremental refresh cost against
// full re-computation on the iterative engine.
//
// Build: cmake --build build && ./build/examples/pagerank_incremental
#include <cstdio>

#include "apps/pagerank.h"
#include "common/timer.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

using namespace i2mr;

namespace {

std::vector<KV> UnitState(const std::vector<KV>& graph) {
  std::vector<KV> state;
  for (const auto& kv : graph) state.push_back(KV{kv.key, "1"});
  return state;
}

}  // namespace

int main() {
  LocalCluster cluster("/tmp/i2mr_pagerank_example", 4);

  GraphGenOptions gen;
  gen.num_vertices = 5000;
  gen.avg_degree = 10;
  auto graph = GenGraph(gen);
  std::printf("web graph: %zu pages\n", graph.size());

  IncrIterOptions options;
  options.filter_threshold = 0.1;  // change propagation control (§5.3; paper uses 0.1-1)
  IncrementalIterativeEngine engine(
      &cluster, pagerank::MakeIterSpec("pagerank", 4, 60, 1e-4), options);

  auto init = engine.RunInitial(graph, UnitState(graph));
  if (!init.ok()) {
    std::fprintf(stderr, "initial run failed: %s\n",
                 init.status().ToString().c_str());
    return 1;
  }
  std::printf("initial computation: %zu iterations, %.0f ms "
              "(+%.0f ms preserving the MRBGraph)\n",
              init->iterations.size(), init->total_ms(), init->preserve_ms);

  for (int refresh = 1; refresh <= 2; ++refresh) {
    // The web evolves: 10% of pages are re-crawled with changed links.
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.10;
    dopt.seed = 100 + refresh;
    auto delta = GenGraphDelta(gen, dopt, &graph);

    auto result = engine.RunIncremental(delta);
    if (!result.ok()) {
      std::fprintf(stderr, "refresh failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    int64_t mapped = 0;
    for (const auto& it : result->iterations) mapped += it.map_instances;
    std::printf(
        "refresh %d: %zu delta records -> %zu iterations, %lld map "
        "instances re-run (vs %zu per full iteration), %.0f ms\n",
        refresh, delta.size(), result->iterations.size(),
        static_cast<long long>(mapped), graph.size(), result->total_ms());

    // Accuracy check against an offline re-computation.
    auto reference = pagerank::Reference(graph, 60, 1e-4);
    auto state = engine.StateSnapshot();
    if (!state.ok()) return 1;
    std::printf("           mean error vs offline recompute: %.5f%%\n",
                pagerank::MeanError(*state, reference) * 100.0);
  }

  // Compare with full re-computation on the iterative engine.
  WallTimer recompute;
  IterativeEngine full(&cluster, pagerank::MakeIterSpec("pagerank_full", 4, 60, 1e-4));
  if (!full.Prepare(graph, UnitState(graph)).ok() || !full.Run().ok()) return 1;
  std::printf("full re-computation for comparison: %.0f ms\n",
              recompute.ElapsedMillis());
  return 0;
}
