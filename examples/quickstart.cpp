// Quickstart: incremental WordCount with accumulator Reduce (paper §3.5).
//
// Demonstrates the minimal i2MapReduce workflow:
//   1. create a LocalCluster (the MapReduce runtime),
//   2. run an initial job over the full input, preserving results,
//   3. refresh the results with a delta input instead of re-computing.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "apps/wordcount.h"
#include "core/incr_job.h"
#include "mr/cluster.h"

using namespace i2mr;

int main() {
  // A 4-worker in-process cluster rooted in a scratch directory.
  LocalCluster cluster("/tmp/i2mr_quickstart", /*num_workers=*/4);

  // Initial corpus.
  std::vector<KV> docs = {
      {"doc0", "incremental processing keeps mining results fresh"},
      {"doc1", "mapreduce is the workhorse of big data mining"},
      {"doc2", "incremental mapreduce avoids re-computing everything"},
  };
  if (!cluster.dfs()->WriteDataset("docs", docs, 2).ok()) return 1;

  // WordCount in accumulator mode: counts fold into the preserved results.
  IncrementalOneStepJob job(&cluster, wordcount::MakeSpec("quickstart", 4));
  auto init = job.RunInitial(*cluster.dfs()->Parts("docs"));
  if (!init.ok()) {
    std::fprintf(stderr, "initial run failed: %s\n",
                 init.status().ToString().c_str());
    return 1;
  }
  std::printf("initial run: %lld documents mapped, %.1f ms\n",
              static_cast<long long>(init->map_instances), init->wall_ms);

  // New documents arrive (insertion-only delta).
  std::vector<DeltaKV> delta = {
      {DeltaOp::kInsert, "doc3", "incremental refresh of mining results"},
      {DeltaOp::kInsert, "doc4", "big data keeps evolving"},
  };
  if (!cluster.dfs()->WriteDeltaDataset("delta", delta, 1).ok()) return 1;
  auto incr = job.RunIncremental(*cluster.dfs()->Parts("delta"));
  if (!incr.ok()) {
    std::fprintf(stderr, "refresh failed: %s\n",
                 incr.status().ToString().c_str());
    return 1;
  }
  std::printf("incremental refresh: %lld documents mapped, %.1f ms\n",
              static_cast<long long>(incr->map_instances), incr->wall_ms);

  auto results = job.Results();
  if (!results.ok()) return 1;
  std::printf("\nword counts after refresh:\n");
  for (const auto& kv : *results) {
    std::printf("  %-16s %s\n", kv.key.c_str(), kv.value.c_str());
  }
  return 0;
}
