// Continuous delta-ingestion: every app becomes a streaming app.
//
// Two pipelines share one cluster under a PipelineManager: a PageRank
// ranking over an evolving web graph and a K-Means clustering over an
// evolving point set. A background scheduler drains each pipeline's durable
// delta log into incremental refresh epochs (min-batch / max-lag triggers)
// while the ServingView keeps answering point lookups from the last
// committed epoch.
//
// Build: cmake --build build && ./build/examples/streaming_pipeline
#include <chrono>
#include <cstdio>
#include <thread>

#include "apps/kmeans.h"
#include "apps/pagerank.h"
#include "data/graph_gen.h"
#include "data/points_gen.h"
#include "mr/cluster.h"
#include "pipeline/pipeline_manager.h"

using namespace i2mr;

namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

}  // namespace

int main() {
  LocalCluster cluster("/tmp/i2mr_streaming_example", 4);
  PipelineManagerOptions mopts;
  mopts.scheduler_threads = 2;
  mopts.poll_interval_ms = 5;
  PipelineManager manager(&cluster, mopts);

  // -- Pipeline 1: PageRank over a live web graph ---------------------------
  GraphGenOptions ggen;
  ggen.num_vertices = 3000;
  ggen.avg_degree = 8;
  auto graph = GenGraph(ggen);

  PipelineOptions pr_options;
  pr_options.spec = pagerank::MakeIterSpec("pagerank", 4, 60, 1e-6);
  pr_options.engine.filter_threshold = 0.1;  // CPC (§5.3)
  pr_options.min_batch = 50;    // refresh once 50 updates are pending...
  pr_options.max_lag_ms = 200;  // ...or a pending update is 200ms old
  // Segmented delta log: rotate small segments and keep consumed ones in
  // log/archive/ instead of unlinking them (cheap replay/debug trail).
  pr_options.log.segment_bytes = 64 << 10;
  pr_options.log.archive_purged = true;
  auto pr = manager.Register("pagerank", pr_options);
  if (!pr.ok()) return 1;
  if (!(*pr)->Bootstrap(graph, UnitState(graph)).ok()) return 1;
  std::printf("pagerank bootstrapped: %zu pages, epoch %llu\n", graph.size(),
              (unsigned long long)(*pr)->committed_epoch());

  // -- Pipeline 2: K-Means over a live point set ----------------------------
  PointsGenOptions pgen;
  pgen.num_points = 2000;
  pgen.dims = 4;
  pgen.num_clusters = 8;
  auto points = GenPoints(pgen);

  PipelineOptions km_options;
  km_options.spec = kmeans::MakeIterSpec("kmeans", 4, 30, 1e-5);
  km_options.engine.maintain_mrbg = false;  // §5.2: global recompute app
  km_options.min_batch = 100;
  km_options.max_lag_ms = 300;
  // Power-failure durability: appends and epoch commits are fsync'd (see
  // BENCH_pipeline.json "durability" for what each synced append costs).
  km_options.durability = DurabilityMode::kPowerFailure;
  auto km = manager.Register("kmeans", km_options);
  if (!km.ok()) return 1;
  if (!(*km)->Bootstrap(points, kmeans::InitialState(points, 8)).ok()) return 1;
  std::printf("kmeans bootstrapped: %zu points, 8 centroids\n", points.size());

  // -- Live traffic ---------------------------------------------------------
  manager.Start();
  const std::string probe = graph.front().key;
  for (int round = 1; round <= 4; ++round) {
    // The web evolves...
    GraphDeltaOptions gd;
    gd.update_fraction = 0.03;
    gd.seed = 500 + round;
    auto graph_delta = GenGraphDelta(ggen, gd, &graph);
    for (const auto& d : graph_delta) {
      if (!manager.Append("pagerank", d).ok()) return 1;
    }
    // ...and so do the points.
    auto points_delta = GenPointsDelta(pgen, 0.05, 0.0, 600 + round, &points);
    if (!manager
             .AppendBatch("kmeans", std::vector<DeltaKV>(points_delta.begin(),
                                                         points_delta.end()))
             .ok()) {
      return 1;
    }

    // Reads keep flowing while the refreshes run in the background.
    auto rank = manager.view().Lookup("pagerank", probe);
    auto centroids = manager.view().Lookup("kmeans", kmeans::kStateKey);
    if (!rank.ok() || !centroids.ok()) return 1;
    std::printf(
        "round %d: +%zu graph / +%zu point updates | served rank(%s)=%s "
        "from epoch %llu\n",
        round, graph_delta.size(), points_delta.size(), probe.c_str(),
        rank->c_str(), (unsigned long long)(*pr)->committed_epoch());
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }

  // Let the scheduler finish (bounded: a persistently failing epoch must
  // not hang the example), then stop it.
  for (int i = 0; i < 1500 && ((*pr)->pending() > 0 || (*km)->pending() > 0);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  manager.Stop();

  auto stats = manager.stats();
  std::printf(
      "drained: %llu epochs committed, %llu deltas applied, %llu failures\n",
      (unsigned long long)stats.epochs_committed,
      (unsigned long long)stats.deltas_applied,
      (unsigned long long)stats.epoch_failures);
  std::printf(
      "pagerank delta log: %llu live segment file(s), purge watermark %llu "
      "(consumed segments in log/archive/)\n",
      (unsigned long long)(*pr)->log()->segment_files(),
      (unsigned long long)(*pr)->log()->purge_watermark());

  // Final accuracy check against an offline recompute of the last snapshot.
  auto reference = pagerank::Reference(graph, 60, 1e-6);
  auto served = (*pr)->ServingSnapshot();
  std::printf("pagerank mean error vs offline recompute: %.5f%%\n",
              pagerank::MeanError(served, reference) * 100.0);
  std::printf("kmeans serving epoch: %llu\n",
              (unsigned long long)(*km)->committed_epoch());
  return 0;
}
