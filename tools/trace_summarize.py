#!/usr/bin/env python3
"""Validate and summarize a Chrome trace-event JSON file.

Reads a trace produced by `I2MR_TRACE_JSON=... <binary>` (or any
{"traceEvents": [...]} file), checks that it is structurally sound, and
prints a per-span-name duration summary. Intended both as a CI gate on
traced benches and as a quick terminal alternative to loading Perfetto.

Checks (any failure exits non-zero):
  - the file parses as JSON and has a traceEvents list;
  - every event has a name and phase; "X" events have ts and dur >= 0;
  - complete events on each track (tid) are well-nested: sorting by
    start time, a span's interval never PARTIALLY overlaps a previously
    opened span on the same track (RAII scopes can only nest);
  - --require-span NAME: at least one "X" event with that name exists;
  - --require-within INNER:OUTER: at least one INNER span lies fully
    inside an OUTER span on the same track (parent/child sanity, e.g.
    `engine.refresh:epoch.round`).

Usage:
  python3 tools/trace_summarize.py build/trace.json \
      --require-span serving.coordinated_epoch \
      --require-within barrier.flip:serving.coordinated_epoch
"""

import argparse
import collections
import json
import sys

# Slop for interval comparisons: export timestamps are microseconds with
# 3 decimals, so two adjacent spans can collide at exactly 1ns.
EPSILON_US = 0.002


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
    elif isinstance(doc, list):  # the bare-array flavor is also legal
        events = doc
    else:
        raise ValueError("top level is neither an object nor an array")
    if not isinstance(events, list):
        raise ValueError("no traceEvents list")
    return events


def validate_events(events):
    """Structural checks; returns (complete_events, errors)."""
    errors = []
    complete = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event #{i} is not an object")
            continue
        name = ev.get("name")
        ph = ev.get("ph")
        if not name or not ph:
            errors.append(f"event #{i} lacks name/ph: {ev!r}")
            continue
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or not isinstance(
                dur, (int, float)
            ):
                errors.append(f"X event {name!r} #{i} lacks numeric ts/dur")
                continue
            if dur < 0:
                errors.append(f"X event {name!r} #{i} has negative dur {dur}")
                continue
            complete.append(ev)
        elif ph == "i":
            if not isinstance(ev.get("ts"), (int, float)):
                errors.append(f"instant {name!r} #{i} lacks numeric ts")
        elif ph != "M":
            errors.append(f"event {name!r} #{i} has unexpected phase {ph!r}")
    return complete, errors


def check_nesting(complete):
    """RAII spans on one thread can nest but never partially overlap."""
    errors = []
    by_tid = collections.defaultdict(list)
    for ev in complete:
        by_tid[ev.get("tid", 0)].append(ev)
    for tid, spans in sorted(by_tid.items()):
        # Sort by start; ties open the LONGER span first (it is the parent).
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # open spans, innermost last
        for ev in spans:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1][1] - EPSILON_US:
                stack.pop()
            if stack and end > stack[-1][1] + EPSILON_US:
                outer = stack[-1]
                errors.append(
                    f"tid {tid}: span {ev['name']!r} "
                    f"[{start:.3f}, {end:.3f}] overlaps but is not "
                    f"contained in {outer[2]!r} "
                    f"[{outer[0]:.3f}, {outer[1]:.3f}]"
                )
                continue
            stack.append((start, end, ev["name"]))
    return errors


def contains(inner, outer):
    return (
        inner.get("tid", 0) == outer.get("tid", 0)
        and inner["ts"] >= outer["ts"] - EPSILON_US
        and inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + EPSILON_US
    )


def check_within(complete, inner_name, outer_name):
    inners = [e for e in complete if e["name"] == inner_name]
    outers = [e for e in complete if e["name"] == outer_name]
    if not inners:
        return f"--require-within: no {inner_name!r} spans in trace"
    if not outers:
        return f"--require-within: no {outer_name!r} spans in trace"
    for i in inners:
        if any(contains(i, o) for o in outers):
            return None
    return (
        f"--require-within: no {inner_name!r} span is contained in any "
        f"{outer_name!r} span on the same tid"
    )


def summarize(complete, events):
    per_name = collections.defaultdict(list)
    for ev in complete:
        per_name[ev["name"]].append(ev["dur"])
    tracks = len({ev.get("tid", 0) for ev in complete})
    instants = sum(1 for e in events if isinstance(e, dict) and e.get("ph") == "i")
    print(
        f"{len(complete)} spans, {instants} instants, "
        f"{len(per_name)} span names, {tracks} tracks"
    )
    print(f"{'span':<32}{'count':>7}{'total_ms':>12}{'mean_us':>10}{'max_us':>10}")
    for name in sorted(per_name, key=lambda n: -sum(per_name[n])):
        durs = per_name[name]
        print(
            f"{name:<32}{len(durs):>7}"
            f"{sum(durs) / 1e3:>12.3f}"
            f"{sum(durs) / len(durs):>10.1f}"
            f"{max(durs):>10.1f}"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless at least one complete span with NAME exists",
    )
    parser.add_argument(
        "--require-within",
        action="append",
        default=[],
        metavar="INNER:OUTER",
        help="fail unless some INNER span nests inside an OUTER span",
    )
    args = parser.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"FAIL: {args.trace}: {e}", file=sys.stderr)
        return 1

    complete, errors = validate_events(events)
    errors += check_nesting(complete)

    names = {e["name"] for e in complete}
    for required in args.require_span:
        if required not in names:
            errors.append(f"--require-span: no {required!r} span in trace")
    for pair in args.require_within:
        inner, sep, outer = pair.partition(":")
        if not sep:
            errors.append(f"--require-within needs INNER:OUTER, got {pair!r}")
            continue
        err = check_within(complete, inner, outer)
        if err:
            errors.append(err)

    summarize(complete, events)
    if errors:
        print(f"\nFAIL: {len(errors)} error(s):", file=sys.stderr)
        for e in errors[:20]:
            print(f"  {e}", file=sys.stderr)
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
