#!/usr/bin/env python3
"""Smoke-check a fresh BENCH_pipeline.json against the checked-in baseline.

CI runs the pipeline bench on every push; this gate fails the job when mean
epoch latency regresses by more than --max-ratio (default 2x) at any delta
rate present in both files. To stay meaningful across machines of very
different speed (a laptop-generated baseline vs a CI runner), the metric is
normalized by the same run's full-recompute time by default: the gated
quantity is mean_epoch_ms / full_recompute_ms, i.e. "epoch latency in units
of what a from-scratch recompute costs on this machine". Pass
--absolute to compare raw milliseconds instead.

It is a smoke check, not a microbenchmark harness: the 2x bar absorbs
runner noise while still catching an O(live bytes) regression sneaking back
into the epoch commit or purge path.

Usage: check_bench_regression.py --baseline BENCH_pipeline.json \
           --current build/BENCH_pipeline.json [--max-ratio 2.0] [--absolute]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    return data, {r["delta_rate"]: r for r in data.get("results", [])}


def metric_value(data, rate_entry, metric, absolute):
    value = rate_entry.get(metric)
    if value is None:
        return None
    if absolute:
        return value
    full = data.get("full_recompute_ms")
    if not full:
        return value  # no normalizer recorded: fall back to absolute
    return value / full


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-ratio", type=float, default=2.0)
    parser.add_argument(
        "--metric", default="mean_epoch_ms",
        help="per-rate metric to compare (default: mean_epoch_ms)")
    parser.add_argument(
        "--absolute", action="store_true",
        help="compare raw values instead of normalizing by full_recompute_ms")
    args = parser.parse_args()

    baseline_data, baseline = load(args.baseline)
    current_data, current = load(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("check_bench_regression: no shared delta rates between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 1

    unit = args.metric if args.absolute else f"{args.metric}/full_recompute_ms"
    failed = False
    for rate in shared:
        base = metric_value(baseline_data, baseline[rate], args.metric,
                            args.absolute)
        cur = metric_value(current_data, current[rate], args.metric,
                           args.absolute)
        if not base or cur is None:
            continue
        ratio = cur / base
        verdict = "OK" if ratio <= args.max_ratio else "REGRESSED"
        print(f"delta_rate={rate}: {unit} {base:.4f} -> {cur:.4f} "
              f"({ratio:.2f}x, limit {args.max_ratio:.2f}x) {verdict}")
        if ratio > args.max_ratio:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
