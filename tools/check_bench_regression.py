#!/usr/bin/env python3
"""Smoke-check a fresh BENCH_*.json against its checked-in baseline.

CI runs the pipeline and serving benches on every push; this gate fails
the job when the gated metric regresses by more than --max-ratio at any
--key value present in both files (delta_rate for BENCH_pipeline.json,
shards for BENCH_serving.json). To stay meaningful across machines of very
different speed (a laptop-generated baseline vs a CI runner), the metric
is normalized by the same run's full-recompute time when the file records
one: the gated quantity is then metric / full_recompute_ms, i.e. "latency
in units of what a from-scratch recompute costs on this machine". Files
without a normalizer (BENCH_serving.json) compare raw values; pass
--absolute to force that everywhere.

It is a smoke check, not a microbenchmark harness: the ratio bar absorbs
runner noise while still catching an O(live bytes) regression sneaking
back into the epoch commit/purge path, or a pinned read starting to block
on refreshes (which moves p99 by orders of magnitude, not percents).

Usage: check_bench_regression.py --baseline BENCH_pipeline.json \
           --current build/BENCH_pipeline.json [--key delta_rate] \
           [--metric mean_epoch_ms] [--max-ratio 2.0] [--absolute]
"""

import argparse
import json
import sys


def load(path, key, results_key):
    with open(path) as f:
        data = json.load(f)
    return data, {r[key]: r for r in data.get(results_key, []) if key in r}


def metric_value(data, rate_entry, metric, absolute):
    value = rate_entry.get(metric)
    if value is None:
        return None
    if absolute:
        return value
    full = data.get("full_recompute_ms")
    if not full:
        return value  # no normalizer recorded: fall back to absolute
    return value / full


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-ratio", type=float, default=2.0)
    parser.add_argument(
        "--key", default="delta_rate",
        help="result field identifying comparable entries "
             "(delta_rate for the pipeline bench, shards for the serving "
             "bench, replicas for the replica scaling section)")
    parser.add_argument(
        "--results-key", default="results",
        help="top-level array holding the result entries (a bench file may "
             "carry several sections, e.g. BENCH_serving.json's 'results' "
             "and 'replica_results')")
    parser.add_argument(
        "--metric", action="append", default=None,
        help="per-entry metric to compare (default: mean_epoch_ms); "
             "repeatable — each metric is gated individually, so a "
             "regression in one stage (say mean_merge_ms) fails the job "
             "even when the aggregate epoch time still squeaks under the "
             "bar")
    parser.add_argument(
        "--absolute", action="store_true",
        help="compare raw values instead of normalizing by full_recompute_ms")
    args = parser.parse_args()

    metrics = args.metric if args.metric else ["mean_epoch_ms"]

    baseline_data, baseline = load(args.baseline, args.key, args.results_key)
    current_data, current = load(args.current, args.key, args.results_key)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print(f"check_bench_regression: no shared '{args.key}' entries "
              f"between {args.baseline} and {args.current}", file=sys.stderr)
        return 1

    normalized = (not args.absolute
                  and baseline_data.get("full_recompute_ms")
                  and current_data.get("full_recompute_ms"))
    failed = False
    for metric in metrics:
        unit = f"{metric}/full_recompute_ms" if normalized else metric
        for key in shared:
            base = metric_value(baseline_data, baseline[key], metric,
                                args.absolute)
            cur = metric_value(current_data, current[key], metric,
                               args.absolute)
            if not base or cur is None:
                continue
            ratio = cur / base
            verdict = "OK" if ratio <= args.max_ratio else "REGRESSED"
            print(f"{args.key}={key}: {unit} {base:.4f} -> {cur:.4f} "
                  f"({ratio:.2f}x, limit {args.max_ratio:.2f}x) {verdict}")
            if ratio > args.max_ratio:
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
